/**
 * @file
 * Circuit-level scenarios: the internal-timing waveforms (Fig. 2b,
 * Fig. 3, Fig. 10), the variant taxonomy and circuit costs (Table
 * 1), latency/energy per variant (Table 2), the CODIC-sigsa
 * Monte-Carlo analysis (Table 11), and the granularity / sig-opt
 * ablations.
 */

#include "scenario/builtin.h"

#include <cmath>

#include "circuit/analog.h"
#include "circuit/delay_element.h"
#include "circuit/monte_carlo.h"
#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "power/energy_model.h"
#include "puf/response_time.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"

namespace codic {

namespace {

/** Emit a transient's voltage series sampled every `step_ns`. */
void
emitSeries(RunContext &ctx, const std::string &section,
           const Transient &tr, double step_ns)
{
    for (const auto &p : tr.points) {
        const double frac = p.t_ns / step_ns;
        if (std::abs(frac - std::round(frac)) > 1e-6)
            continue;
        ctx.row(section, ResultRow()
                             .add("t_ns", p.t_ns)
                             .add("wl", p.wl)
                             .add("eq", p.eq)
                             .add("sense_p", p.sense_p)
                             .add("sense_n", p.sense_n)
                             .add("v_bitline", p.v_bitline)
                             .add("v_cell", p.v_cell));
    }
}

void
runFig2(RunContext &ctx)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    // Precharge: bitline parked at Vdd after a previous access.
    CellCircuit pre_cell(params, nominal);
    pre_cell.setCellVoltage(params.vdd);
    pre_cell.setBitlineVoltage(params.vdd);
    const Transient pre =
        pre_cell.run(variants::precharge().schedule, 20.0);
    emitSeries(ctx, "precharge (EQ[5,11])", pre, 2.0);

    // Activate: stored one, charge sharing then sensing/restore.
    CellCircuit act_cell(params, nominal);
    act_cell.setCellVoltage(params.vdd);
    const Transient act =
        act_cell.run(variants::activate().schedule, 30.0);
    emitSeries(ctx, "activate, stored '1' (wl[5,22] sense[7,22])",
               act, 2.0);

    CellCircuit act0_cell(params, nominal);
    act0_cell.setCellVoltage(0.0);
    const Transient act0 =
        act0_cell.run(variants::activate().schedule, 30.0);
    emitSeries(ctx, "activate, stored '0'", act0, 2.0);

    ctx.row("shape checks vs paper Fig. 1/2b",
            ResultRow()
                .add("charge_sharing_dev_mv",
                     (act.bitlineAt(6.5) - params.vHalf()) * 1e3)
                .add("restored_cell_v", act.finalCell())
                .add("precharged_bitline_v", pre.finalBitline())
                .add("vdd", params.vdd)
                .add("vdd_half", params.vHalf()));
}

void
runFig3(RunContext &ctx)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    for (double init : {1.0, 0.0}) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(init * params.vdd);
        const Transient tr = cell.run(variants::sig().schedule, 30.0);
        emitSeries(ctx,
                   std::string("CODIC-sig, stored '") +
                       (init > 0.5 ? "1" : "0") +
                       "' -> capacitor driven to Vdd/2",
                   tr, 4.0);
    }

    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd); // Stored one is destroyed.
        const Transient tr =
            cell.run(variants::detZero().schedule, 30.0);
        emitSeries(ctx, "CODIC-det, stored '1' -> deterministic '0'",
                   tr, 4.0);
    }
    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(0.0);
        const Transient tr =
            cell.run(variants::detOne().schedule, 30.0);
        emitSeries(ctx, "CODIC-det, stored '0' -> deterministic '1'",
                   tr, 4.0);
    }

    {
        CellCircuit cell(params, nominal);
        const Transient tr =
            cell.run(variants::sigsa().schedule, 30.0);
        emitSeries(ctx,
                   "CODIC-sigsa (Fig. 10), designed bias -> '1'", tr,
                   4.0);
    }
    {
        VariationDraw flipped;
        flipped.sa_offset = -30e-3;
        CellCircuit cell(params, flipped);
        const Transient tr =
            cell.run(variants::sigsa().schedule, 30.0);
        emitSeries(ctx, "CODIC-sigsa, -30 mV offset -> '0'", tr, 4.0);
    }

    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        const Transient tr =
            cell.run(variants::sigOpt().schedule, 16.0);
        emitSeries(ctx,
                   "CODIC-sig-opt (wl[5,11] EQ[7,11]): same effect "
                   "in 13 ns",
                   tr, 4.0);
        ctx.row("sig-opt early termination",
                ResultRow()
                    .add("final_cell_v", tr.finalCell())
                    .add("vdd_half", params.vHalf()));
    }
}

void
runTable1(RunContext &ctx)
{
    for (const auto &v : variants::all()) {
        ctx.row("in-DRAM signals of the named commands",
                ResultRow()
                    .add("command", v.name)
                    .add("class", variantClassName(v.classify()))
                    .add("signals", v.schedule.str()));
    }

    ctx.row("variant space (Section 4.1.3)",
            ResultRow()
                .add("pulses_per_signal",
                     SignalSchedule::pulsesPerSignal())
                .add("total_variants",
                     SignalSchedule::totalVariants())
                .add("paper_pulses", 300)
                .add("paper_total", "300^4 = 8.1e9"));

    DelayElement element;
    ctx.row("CODIC circuit costs (Section 4.2.1)",
            ResultRow()
                .add("metric", "delay element area / mat (1 signal)")
                .add("model", element.areaOverheadPerMat())
                .add("paper", "0.28 %"));
    ctx.row("CODIC circuit costs (Section 4.2.1)",
            ResultRow()
                .add("metric", "full CODIC area / mat (4 signals)")
                .add("model", element.fullCodicAreaOverheadPerMat())
                .add("paper", "1.12 %"));
    ctx.row("CODIC circuit costs (Section 4.2.1)",
            ResultRow()
                .add("metric", "switching energy (4 elements, fJ)")
                .add("model", 4.0 * element.energyPerOperationFj())
                .add("paper", "< 500 fJ"));
    ctx.row("CODIC circuit costs (Section 4.2.1)",
            ResultRow()
                .add("metric", "added delay on DDRx ACT path (ns)")
                .add("model", element.ddrxPathPenaltyNs())
                .add("paper", "0.028 ns"));
    ctx.row("CODIC circuit costs (Section 4.2.1)",
            ResultRow()
                .add("metric", "buffer stage delay (ns)")
                .add("model", element.delayNs(1))
                .add("paper", "~1 ns"));

    ModeRegisterFile mrf;
    mrf.program(variants::sig().schedule);
    for (size_t i = 0; i < kNumSignals; ++i) {
        const auto sig = static_cast<Signal>(i);
        const auto pulse = mrf.decode().pulse(sig);
        ctx.row("mode-register encoding of CODIC-sig (Section 4.2.2)",
                ResultRow()
                    .add("signal", signalName(sig))
                    .add("mr_value",
                         static_cast<uint64_t>(mrf.readRegister(sig)))
                    .add("pulse",
                         pulse ? ("[" +
                                  std::to_string(pulse->start_ns) +
                                  "," + std::to_string(pulse->end_ns) +
                                  "]")
                               : "(disabled)"));
    }
}

void
runTable2(RunContext &ctx)
{
    struct PaperRow
    {
        const char *name;
        CodicVariant variant;
        double paper_latency_ns;
        double paper_energy_nj;
    };
    const PaperRow rows[] = {
        {"CODIC-activate", variants::activate(), 35.0, 17.3},
        {"CODIC-precharge", variants::precharge(), 13.0, 17.2},
        {"CODIC-sig", variants::sig(), 35.0, 17.2},
        {"CODIC-sig-opt", variants::sigOpt(), 13.0, 17.2},
        {"CODIC-det", variants::detZero(), 35.0, 17.2},
    };
    for (const auto &row : rows) {
        ctx.row("latency and energy of the CODIC command variants",
                ResultRow()
                    .add("primitive", row.name)
                    .add("latency_ns",
                         variantLatencyNs(row.variant.schedule))
                    .add("paper_latency_ns", row.paper_latency_ns)
                    .add("energy_nj",
                         variantEnergyNj(row.variant.schedule))
                    .add("paper_energy_nj", row.paper_energy_nj));
    }
    ctx.row("observations (Section 4.3)",
            ResultRow()
                .add("sig_opt_speedup",
                     variantLatencyNs(variants::sig().schedule) /
                         variantLatencyNs(variants::sigOpt().schedule))
                .add("energy_spread_frac",
                     variantEnergyNj(variants::activate().schedule) /
                             variantEnergyNj(
                                 variants::sig().schedule) -
                         1.0));
    ctx.note("Routing (~40%) and array operation (~40%) dominate "
             "every command, so energies are nearly equal across "
             "variants.");
}

void
runTable11(RunContext &ctx)
{
    const size_t runs = ctx.scaled(100000);

    const std::pair<double, const char *> pv_rows[] = {
        {0.02, "0.00 %"},
        {0.03, "0.00 %"},
        {0.04, "0.02 %"},
        {0.05, "0.19 %"},
    };
    for (const auto &[pv, paper] : pv_rows) {
        MonteCarloConfig mc;
        mc.run.seed = paperSeed(
            ctx.options(), 100 + static_cast<uint64_t>(pv * 1000));
        mc.run.threads = ctx.options().threads;
        mc.schedule = sigsaSchedule();
        mc.params.process_variation = pv;
        mc.runs = runs;
        const auto r = runMonteCarlo(mc);
        ctx.row("bit flips vs process variation",
                ResultRow()
                    .add("process_variation", pv)
                    .add("runs", runs)
                    .add("flip_fraction", r.flipFraction())
                    .add("paper", paper));
    }

    const std::pair<double, const char *> t_rows[] = {
        {30.0, "0.02 %"},
        {60.0, "0.19 %"},
        {70.0, "0.21 %"},
        {85.0, "0.15 %"},
    };
    for (const auto &[temp, paper] : t_rows) {
        MonteCarloConfig mc;
        mc.run.seed = paperSeed(ctx.options(),
                                200 + static_cast<uint64_t>(temp));
        mc.run.threads = ctx.options().threads;
        mc.schedule = sigsaSchedule();
        mc.params.temperature_c = temp;
        mc.runs = runs;
        const auto r = runMonteCarlo(mc);
        ctx.row("bit flips vs temperature (4% PV)",
                ResultRow()
                    .add("temperature_c", temp)
                    .add("runs", runs)
                    .add("flip_fraction", r.flipFraction())
                    .add("paper", paper));
    }
    ctx.note("Flips appear once process variation exceeds the "
             "designed SA bias (~4%) and grow quickly; temperature "
             "raises flips sharply then saturates (the paper's "
             "non-monotonic 85 C point is within 100k-run sampling "
             "noise).");
}

void
runAblationGranularity(RunContext &ctx)
{
    struct Step
    {
        double step_ns;
        size_t taps;
    };
    for (const auto &[step_ns, taps] :
         {Step{1.0, 25}, Step{2.0, 13}, Step{4.0, 7}, Step{8.0, 4}}) {
        DelayElementParams p;
        p.taps = taps;
        p.buffer_delay_ns = step_ns;
        DelayElement e(p);
        ctx.row("time-step granularity vs area",
                ResultRow()
                    .add("step_ns", step_ns)
                    .add("taps", taps)
                    .add("area_per_mat_1sig", e.areaOverheadPerMat())
                    .add("area_per_mat_4sig",
                         e.fullCodicAreaOverheadPerMat())
                    .add("pulses_per_signal",
                         SignalSchedule::pulsesPerSignal(
                             static_cast<int>(taps)))
                    .add("energy_4elem_fj",
                         4.0 * e.energyPerOperationFj()));
    }
    ctx.note("Halving the resolution roughly halves the area "
             "(buffers dominate) but shrinks the variant space "
             "quadratically per signal; 1 ns / 25 taps (the paper's "
             "choice) keeps the full 300^4 design space at 1.12% mat "
             "area. Steps coarser than ~4 ns can no longer express "
             "CODIC-sig vs CODIC-det orderings within the 25 ns "
             "window.");
}

void
runAblationSigOpt(RunContext &ctx)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    for (int end : {9, 10, 11, 13, 16, 22}) {
        SignalSchedule s;
        s.set(Signal::Wl, 5, end);
        s.set(Signal::Eq, 7, end);

        double err[2];
        int idx = 0;
        for (double init : {params.vdd, 0.0}) {
            CellCircuit cell(params, nominal);
            cell.setCellVoltage(init);
            cell.run(s, 30.0);
            err[idx++] =
                std::fabs(cell.cellVoltage() - params.vHalf()) * 1e3;
        }
        ctx.row("early-termination sweep",
                ResultRow()
                    .add("deassert_ns", end)
                    .add("bank_occupancy_ns", variantLatencyNs(s))
                    .add("cell_err_stored1_mv", err[0])
                    .add("cell_err_stored0_mv", err[1]));
    }

    const DramConfig cfg =
        moduleFor(ctx.options(), ctx.options().capacityMbOr(2048),
                  ctx.options().channelsOr(1));
    const auto sig = evaluationTime(PufKind::CodicSig, true, cfg);
    const auto opt = evaluationTime(PufKind::CodicSigOpt, true, cfg);
    ctx.row("end-to-end PUF evaluation (native command-level)",
            ResultRow()
                .add("codic_sig_ns", sig.native_ns)
                .add("codic_sig_opt_ns", opt.native_ns)
                .add("speedup_frac",
                     sig.native_ns / opt.native_ns - 1.0));
    ctx.note("By 11 ns the capacitor error is sub-millivolt, so the "
             "13 ns sig-opt command (vs 35 ns) loses no reliability "
             "(paper Section 4.1.1).");
}

} // namespace

void
registerCircuitScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "circuit_fig2_waveforms",
        "Fig. 2b: internal-signal waveforms of regular precharge and "
        "activate at circuit level",
        runFig2));
    registry.add(makeScenario(
        "circuit_fig3_codic_waveforms",
        "Fig. 3 / Fig. 10: CODIC-sig, CODIC-det, CODIC-sigsa, and "
        "sig-opt transients",
        runFig3));
    registry.add(makeScenario(
        "circuit_table1_variants",
        "Table 1: variant taxonomy, the 300^4 variant space, circuit "
        "costs, and mode-register encoding",
        runTable1));
    registry.add(makeScenario(
        "circuit_table2_latency_energy",
        "Table 2: latency and energy of the five CODIC command "
        "variants",
        runTable2));
    registry.add(makeScenario(
        "circuit_table11_sigsa",
        "Table 11: Monte-Carlo CODIC-sigsa bit flips vs process "
        "variation and temperature",
        runTable11));
    registry.add(makeScenario(
        "circuit_ablation_granularity",
        "Ablation: delay-element time-step granularity vs silicon "
        "cost and variant-space size",
        runAblationGranularity));
    registry.add(makeScenario(
        "circuit_ablation_sig_opt",
        "Ablation: CODIC-sig early termination - residual capacitor "
        "error vs deassert time and end-to-end impact",
        runAblationSigOpt));
}

} // namespace codic
