/**
 * @file
 * Memory-scheduler ablations (repository extension): sweeps of the
 * SchedulerPolicy knobs that PR 4 added to the FR-FCFS controller
 * and the fleet's bank-parallel shard replay.
 *
 *  - Drain watermarks: how batching buffered writes into larger
 *    drain episodes amortizes the rd<->wr data-bus turnaround.
 *  - Row-hit drain batch: how coalescing same-row writes scattered
 *    through the queue removes row-conflict ACT/PRE pairs.
 *  - Replay batch: how many independent devices of a fleet shard
 *    replay bank-parallel on one DramSystem, and what that does to
 *    the shard's replayed makespan.
 *
 * Determinism: every structured row is a pure function of
 * (seed, scale). The sweeps pin their own policy values, so --sched
 * does not change this scenario's output; the fleet sweep also pins
 * its shard count (4), so --shards does not either. The module-step
 * sweeps drain channels as campaign tasks but reduce per-channel
 * results in index order, so --threads does not change output.
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "dram/system.h"
#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "scenario/scheduler_workloads.h"

namespace codic {

namespace {

void
runAblationScheduler(RunContext &ctx)
{
    const int64_t capacity_mb = ctx.options().capacityMbOr(256);
    const int channels = ctx.options().channelsOr(1);
    // Channel-parallel stepping: with --channels > 1 the workload
    // drains step each independent channel as an engine task. The
    // per-channel results reduce in index order, so every structured
    // row stays byte-identical at any --threads value (the scenario
    // determinism suite pins this).
    CampaignEngine engine(ctx.options().threads);

    // --- Sweep 1: drain watermarks vs data-bus turnarounds. ---
    {
        const int64_t ops = static_cast<int64_t>(ctx.scaled(4000));
        struct Point { int high, low; };
        for (const Point p : {Point{0, 0}, {25, 10}, {50, 20},
                              {75, 25}, {90, 10}}) {
            DramConfig cfg =
                moduleFor(ctx.options(), capacity_mb, channels);
            cfg.scheduler = SchedulerPolicy::preset("batched");
            cfg.scheduler.drain_high_pct = p.high;
            cfg.scheduler.drain_low_pct = p.low;
            DramSystem sys(cfg);
            const Cycle done =
                runTurnaroundWorkload(sys, ops, &engine);
            const CommandCounts counts = sys.totalCounts();
            ctx.row("write-drain watermarks vs bus turnarounds",
                    ResultRow()
                        .add("drain_high_pct", p.high)
                        .add("drain_low_pct", p.low)
                        .add("writes", counts.wr)
                        .add("drained_equals_accepted",
                             counts.wr ==
                                 static_cast<uint64_t>(ops))
                        .add("wr_rd_turnarounds",
                             counts.wr_rd_turnarounds)
                        .add("rd_wr_turnarounds",
                             counts.rd_wr_turnarounds)
                        .add("makespan_us",
                             cfg.cyclesToNs(done) / 1e3));
        }
        ctx.note("Watermarked drains buffer accepted writes and pay "
                 "the rd<->wr bus turnaround once per drained burst; "
                 "drain_high_pct = 0 is the legacy eager policy "
                 "(every write issues at acceptance).");
    }

    // --- Sweep 2: row-hit drain batch vs row-conflict ACTs. ---
    {
        const int64_t writes = static_cast<int64_t>(ctx.scaled(4000));
        for (const int batch : {1, 2, 4, 8, 16, 32}) {
            DramConfig cfg =
                moduleFor(ctx.options(), capacity_mb, channels);
            cfg.scheduler = SchedulerPolicy::preset("batched");
            cfg.scheduler.max_drain_batch = batch;
            DramSystem sys(cfg);
            const Cycle done =
                runRowHitWorkload(sys, writes, &engine);
            const CommandCounts counts = sys.totalCounts();
            ctx.row("row-hit drain batch vs activations",
                    ResultRow()
                        .add("max_drain_batch", batch)
                        .add("writes", counts.wr)
                        .add("drained_equals_accepted",
                             counts.wr ==
                                 static_cast<uint64_t>(writes))
                        .add("activations", counts.act)
                        .add("acts_per_100_writes",
                             100.0 * static_cast<double>(counts.act) /
                                 static_cast<double>(counts.wr))
                        .add("makespan_us",
                             cfg.cyclesToNs(done) / 1e3));
        }
        ctx.note("The drain picks the oldest pending write and "
                 "coalesces up to max_drain_batch same-row writes "
                 "from anywhere in the queue, so scattered row "
                 "conflicts collapse into row hits.");
    }

    // --- Sweep 3: fleet replay batch vs shard makespan. ---
    {
        FleetConfig fc;
        fc.population_seed = paperSeed(ctx.options(), 2026);
        fc.devices = static_cast<uint64_t>(ctx.scaled(300));
        fc.shards = 4; // Pinned: the sweep variable is replay_batch.
        fc.dram = moduleFor(ctx.options(), capacity_mb, channels);
        fc.dram.scheduler = SchedulerPolicy::preset("batched");

        TrafficConfig tc;
        tc.traffic_seed = paperSeed(ctx.options(), 43);
        tc.requests = static_cast<uint64_t>(ctx.scaled(2000));
        tc.zipf = 0.9;
        tc.weight_auth = 0.7;
        tc.weight_reenroll = 0.1;
        tc.weight_trng = 0.1;
        tc.weight_dealloc = 0.1;

        // Enroll once; every sweep point reloads the snapshot (the
        // store mutates through re-enrollments during execution).
        std::string store_snapshot;
        {
            DeviceFleet fleet(fc);
            EnrollmentStore store(fc.population_seed);
            AuthConfig ac;
            ac.threads = ctx.options().threads;
            AuthService service(fleet, store, ac);
            service.enrollAll();
            std::ostringstream bytes;
            store.saveBinary(bytes);
            store_snapshot = bytes.str();
        }

        double makespan_serial = 0.0;
        for (const int batch : {1, 2, 4, 8, 16}) {
            FleetConfig point = fc;
            point.dram.scheduler.replay_batch = batch;
            std::istringstream bytes(store_snapshot);
            EnrollmentStore store = EnrollmentStore::loadBinary(bytes);
            DeviceFleet fleet(point);
            AuthConfig ac;
            ac.threads = ctx.options().threads;
            AuthService service(fleet, store, ac);
            const RequestGenerator gen(tc, store.deviceIds());
            const LoadReport report = service.execute(gen.generate());
            const double makespan_ns = report.makespanNs();
            if (batch == 1)
                makespan_serial = makespan_ns;
            ctx.row("fleet replay batch vs shard makespan (4 shards)",
                    ResultRow()
                        .add("replay_batch", batch)
                        .add("requests", report.requests)
                        .add("makespan_ms", makespan_ns / 1e6)
                        .add("speedup_vs_serial",
                             makespan_ns > 0.0
                                 ? makespan_serial / makespan_ns
                                 : 0.0)
                        .addTiming("wall_s", report.wall_seconds));
        }
        ctx.note("replay_batch devices of a shard replay their DRAM "
                 "footprints bank-parallel: the discrete-event "
                 "interleave issues each device's next command in "
                 "near-global-time order, so one device's burst "
                 "chain fills the bus gaps of another's and row-"
                 "command chains hide under read sweeps.");
    }
}

} // namespace

void
registerSchedulerScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "ablation_scheduler",
        "Ablation: FR-FCFS write-drain watermark/row-hit-batch "
        "sweeps and the fleet's bank-parallel replay batch",
        runAblationScheduler));
}

} // namespace codic
