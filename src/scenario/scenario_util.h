/**
 * @file
 * Small helpers shared by the builtin scenario implementations.
 */

#ifndef CODIC_SCENARIO_SCENARIO_UTIL_H
#define CODIC_SCENARIO_SCENARIO_UTIL_H

#include <cstdint>
#include <vector>

#include "common/run_options.h"
#include "dram/config.h"
#include "puf/chip_model.h"

namespace codic {

/**
 * Campaign seed derived from the user seed and a scenario-historical
 * base: the default `--seed 1` reproduces exactly the seeds the
 * pre-registry bench binaries hardcoded (so published numbers do not
 * move), while any other seed shifts every campaign deterministically.
 */
inline uint64_t
paperSeed(const RunOptions &options, uint64_t historical)
{
    return options.seed - 1 + historical;
}

/**
 * Scheduler policy selected by --sched: a full spec (preset name
 * plus optional ":knob=value,..." overrides - see
 * SchedulerPolicy::parse), or the scenario's own default preset when
 * no spec was given. Unknown presets or knobs are fatal
 * (`codic_run --sched help` lists them).
 */
inline SchedulerPolicy
schedulerFor(const RunOptions &options, const char *scenario_default)
{
    return SchedulerPolicy::parse(
        options.sched.empty() ? scenario_default : options.sched);
}

/**
 * DRAM module built from the run options: the --preset speed grade
 * (scenario default when none was given - the paper campaigns
 * default to the published ddr3-1600 baseline) sized to the given
 * capacity/channels/ranks. Unknown preset names are fatal.
 */
inline DramConfig
moduleFor(const RunOptions &options, int64_t capacity_mb,
          int channels, int ranks = 1)
{
    return DramConfig::preset(options.dram_preset.empty()
                                  ? "ddr3-1600"
                                  : options.dram_preset,
                              capacity_mb, channels, ranks);
}

/** Pointer view over a chip population (campaign call convention). */
inline std::vector<const SimulatedChip *>
chipPtrs(const std::vector<SimulatedChip> &chips)
{
    std::vector<const SimulatedChip *> out;
    out.reserve(chips.size());
    for (const auto &c : chips)
        out.push_back(&c);
    return out;
}

} // namespace codic

#endif // CODIC_SCENARIO_SCENARIO_UTIL_H
