/**
 * @file
 * Canonical workloads of the scheduler ablation, shared by the
 * ablation_scheduler scenario and the test-suite invariants
 * (tests/test_system.cc) so both always measure the same traffic.
 */

#ifndef CODIC_SCENARIO_SCHEDULER_WORKLOADS_H
#define CODIC_SCENARIO_SCHEDULER_WORKLOADS_H

#include <cstdint>

#include "dram/system.h"

namespace codic {

/**
 * Interleaved write/read traffic: writes walk 16 rows over banks
 * 0..3, reads sweep rows of banks 4..7 (so no read ever lands on a
 * row with buffered writes and write drains are purely
 * policy-scheduled). Returns the drain completion cycle.
 */
inline Cycle
runTurnaroundWorkload(DramSystem &sys, int64_t ops)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    const int64_t bank_rows = cfg.rows;
    Cycle t = 0;
    for (int64_t i = 0; i < ops; ++i) {
        // RowBankColumn: a row_bytes stride advances the bank, a
        // banks*row_bytes stride the row.
        const int64_t wrow = (i / 4) % 16;
        const int64_t wbank = i % 4;
        const int64_t rrow = i % bank_rows;
        const int64_t rbank = 4 + i % 4;
        sys.write(static_cast<uint64_t>(
                      (wrow * cfg.banks + wbank) * row_bytes),
                  t);
        sys.read(static_cast<uint64_t>(
                     (rrow * cfg.banks + rbank) * row_bytes),
                 t);
        t += 8;
    }
    return sys.drainWrites();
}

/**
 * Row-conflict write stream: writes alternate between two rows of
 * one bank, so a FIFO drain pays an ACT/PRE pair per write while a
 * row-hit batch drain coalesces the queue's same-row writes.
 */
inline Cycle
runRowHitWorkload(DramSystem &sys, int64_t writes)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    Cycle t = 0;
    for (int64_t i = 0; i < writes; ++i) {
        const int64_t row = i % 2;
        const int64_t column = (i / 2) % cfg.columns;
        sys.write(static_cast<uint64_t>(row * cfg.banks * row_bytes +
                                        column * cfg.burst_bytes),
                  t);
        t += 4;
    }
    return sys.drainWrites();
}

} // namespace codic

#endif // CODIC_SCENARIO_SCHEDULER_WORKLOADS_H
