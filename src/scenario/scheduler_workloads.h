/**
 * @file
 * Canonical workloads of the scheduler ablation, shared by the
 * ablation_scheduler scenario and the test-suite invariants
 * (tests/test_system.cc) so both always measure the same traffic.
 */

#ifndef CODIC_SCENARIO_SCHEDULER_WORKLOADS_H
#define CODIC_SCENARIO_SCHEDULER_WORKLOADS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "dram/system.h"

namespace codic {

/**
 * Interleaved write/read traffic: writes walk 16 rows over banks
 * 0..3, reads sweep rows of banks 4..7 (so no read ever lands on a
 * row with buffered writes and write drains are purely
 * policy-scheduled). Returns the drain completion cycle.
 *
 * With `engine` set, the final drain steps the module's independent
 * channels as campaign tasks (DramSystem::drainAllOn); output is
 * byte-identical at any thread count.
 */
inline Cycle
runTurnaroundWorkload(DramSystem &sys, int64_t ops,
                      CampaignEngine *engine = nullptr)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    const int64_t bank_rows = cfg.rows;
    Cycle t = 0;
    for (int64_t i = 0; i < ops; ++i) {
        // RowBankColumn: a row_bytes stride advances the bank, a
        // banks*row_bytes stride the row.
        const int64_t wrow = (i / 4) % 16;
        const int64_t wbank = i % 4;
        const int64_t rrow = i % bank_rows;
        const int64_t rbank = 4 + i % 4;
        sys.write(static_cast<uint64_t>(
                      (wrow * cfg.banks + wbank) * row_bytes),
                  t);
        sys.read(static_cast<uint64_t>(
                     (rrow * cfg.banks + rbank) * row_bytes),
                 t);
        t += 8;
    }
    return engine ? sys.drainAllOn(*engine) : sys.drainWrites();
}

/**
 * Row-conflict write stream: writes alternate between two rows of
 * one bank, so a FIFO drain pays an ACT/PRE pair per write while a
 * row-hit batch drain coalesces the queue's same-row writes.
 */
inline Cycle
runRowHitWorkload(DramSystem &sys, int64_t writes,
                  CampaignEngine *engine = nullptr)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    Cycle t = 0;
    for (int64_t i = 0; i < writes; ++i) {
        const int64_t row = i % 2;
        const int64_t column = (i / 2) % cfg.columns;
        sys.write(static_cast<uint64_t>(row * cfg.banks * row_bytes +
                                        column * cfg.burst_bytes),
                  t);
        t += 4;
    }
    return engine ? sys.drainAllOn(*engine) : sys.drainWrites();
}

/**
 * Bursty open-loop read stream over many tREFI windows, driven
 * through the async transaction API: each burst submits
 * `reads_per_burst` row-sequential reads, `spacing` cycles apart,
 * followed by `gap_cycles` of quiet; the burst's tickets resolve in
 * arrival order. Size the busy span past one tREFI (reads_per_burst
 * x spacing > tREFI) and the postponement allowance decides whether
 * REFs falling due mid-burst stall reads immediately or defer into
 * the following quiet gap (where the always-on refresh engine
 * resolves them for free). Per-read latencies (completion - arrival)
 * append to `latencies`; returns the last completion cycle.
 */
inline Cycle
runRefreshReadWorkload(DramSystem &sys, int64_t bursts,
                       int reads_per_burst, Cycle spacing,
                       Cycle gap_cycles,
                       std::vector<Cycle> *latencies = nullptr)
{
    const int64_t burst_bytes = sys.config().burst_bytes;
    const Cycle period = reads_per_burst * spacing + gap_cycles;
    Cycle last = 0;
    std::vector<Ticket> tickets;
    std::vector<Cycle> arrivals;
    for (int64_t b = 0; b < bursts; ++b) {
        tickets.clear();
        arrivals.clear();
        const Cycle base = b * period;
        for (int i = 0; i < reads_per_burst; ++i) {
            const Cycle arrival = base + spacing * i;
            const uint64_t addr = static_cast<uint64_t>(
                (b * reads_per_burst + i) * burst_bytes);
            tickets.push_back(sys.submit(
                MemTransaction::makeRead(addr, arrival)));
            arrivals.push_back(arrival);
        }
        for (size_t i = 0; i < tickets.size(); ++i) {
            const Cycle done = sys.completionOf(tickets[i]);
            last = std::max(last, done);
            if (latencies)
                latencies->push_back(done - arrivals[i]);
        }
    }
    return last;
}

/**
 * Row-conflict read stream for the read-reordering-window study:
 * each wave submits `wave_size` reads alternating between two rows
 * of one bank (distinct columns), all stamped with the wave's start
 * cycle, then resolves them. With read_window = 1 the controller
 * services them in strict arrival order (a PRE/ACT thrash per read);
 * a wider window regroups the wave into two row-hit runs. Per-read
 * latencies append to `latencies`; returns the last completion.
 */
inline Cycle
runReadWindowWorkload(DramSystem &sys, int64_t waves, int wave_size,
                      std::vector<Cycle> *latencies = nullptr)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    Cycle wave_start = 0;
    Cycle last = 0;
    std::vector<Ticket> tickets;
    for (int64_t w = 0; w < waves; ++w) {
        tickets.clear();
        for (int i = 0; i < wave_size; ++i) {
            const int64_t row = i % 2;
            const int64_t column =
                (w * wave_size + i / 2) % cfg.columns;
            const uint64_t addr = static_cast<uint64_t>(
                row * cfg.banks * row_bytes +
                column * cfg.burst_bytes);
            tickets.push_back(sys.submit(
                MemTransaction::makeRead(addr, wave_start)));
        }
        for (const Ticket t : tickets) {
            const Cycle done = sys.completionOf(t);
            last = std::max(last, done);
            if (latencies)
                latencies->push_back(done - wave_start);
        }
        wave_start = last + 8;
    }
    return last;
}

/**
 * Mixed-priority storm for the QoS ablation and tests. Each wave,
 * stamped at one arrival cycle: background writes (origin 0) walk
 * rows of banks 0..3 until the drain watermark must trip, background
 * reads (origin 0, priority 0) sweep row-missing addresses of banks
 * 4..7, and one urgent read (origin 1, priority -1) to another row
 * of bank 4 is submitted LAST - so under a priority-blind policy it
 * waits out every older same-arrival read plus any write-drain
 * episode, while priority_sched pulls it to the front of the window
 * and jumps it between drain batches. Urgent and background read
 * latencies (completion - arrival) append to the out-vectors;
 * returns the final drain completion cycle.
 */
inline Cycle
runPriorityStormWorkload(DramSystem &sys, int64_t waves,
                         int background_writes, int background_reads,
                         std::vector<Cycle> *urgent_latencies = nullptr,
                         std::vector<Cycle> *bg_latencies = nullptr)
{
    const DramConfig &cfg = sys.config();
    const int64_t row_bytes = cfg.row_bytes;
    Cycle wave_start = 0;
    Cycle last = 0;
    std::vector<Ticket> bg_tickets;
    for (int64_t w = 0; w < waves; ++w) {
        bg_tickets.clear();
        // Background writes: 4 rows x banks 0..3, rows varying per
        // wave so drains never coalesce across waves.
        const auto writeAt = [&](int i) {
            const int64_t row = (w * 4 + i / 4) % cfg.rows;
            const int64_t bank = i % 4;
            sys.write(static_cast<uint64_t>(
                          (row * cfg.banks + bank) * row_bytes),
                      wave_start, /*origin=*/0);
        };
        const int pre_writes = background_writes / 2;
        for (int i = 0; i < pre_writes; ++i)
            writeAt(i);
        // Background reads: distinct rows of banks 4..7 (all row
        // misses), best-effort class.
        for (int i = 0; i < background_reads; ++i) {
            const int64_t row =
                (w * background_reads + i) % cfg.rows;
            const int64_t bank = 4 + i % 4;
            bg_tickets.push_back(sys.submit(MemTransaction::makeRead(
                static_cast<uint64_t>(
                    (row * cfg.banks + bank) * row_bytes),
                wave_start, /*origin=*/0, /*priority=*/0)));
        }
        // The urgent read, submitted after the background reads:
        // same arrival cycle, so only priority scheduling can move
        // it ahead in the window.
        const int64_t urgent_row =
            (w + cfg.rows / 2) % cfg.rows;
        const Ticket urgent = sys.submit(MemTransaction::makeRead(
            static_cast<uint64_t>(
                (urgent_row * cfg.banks + 4) * row_bytes),
            wave_start, /*origin=*/1, /*priority=*/-1));
        // The rest of the write storm lands while the urgent read is
        // queued: a watermark drain episode triggered here services
        // the urgent read between batches under priority_sched, and
        // makes it wait the episode out when priority-blind.
        for (int i = pre_writes; i < background_writes; ++i)
            writeAt(i);
        const Cycle urgent_done = sys.completionOf(urgent);
        if (urgent_latencies)
            urgent_latencies->push_back(urgent_done - wave_start);
        last = std::max(last, urgent_done);
        for (const Ticket t : bg_tickets) {
            const Cycle done = sys.completionOf(t);
            last = std::max(last, done);
            if (bg_latencies)
                bg_latencies->push_back(done - wave_start);
        }
        last = std::max(last, sys.drainWrites());
        wave_start = last + 32;
    }
    return last;
}

} // namespace codic

#endif // CODIC_SCENARIO_SCHEDULER_WORKLOADS_H
