/**
 * @file
 * Static scenario registry: the single lookup point behind
 * `codic_run`, the bench wrappers, and the test suite. The builtin
 * scenarios (every paper figure/table plus the ablations and
 * extensions) are registered on first access; additional scenarios
 * can be added at runtime through add().
 */

#ifndef CODIC_SCENARIO_REGISTRY_H
#define CODIC_SCENARIO_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace codic {

/** Process-wide scenario table (name -> Scenario, names unique). */
class ScenarioRegistry
{
  public:
    /** The singleton, with all builtin scenarios registered. */
    static ScenarioRegistry &instance();

    /** Register a scenario; duplicate names are a fatal error. */
    void add(std::unique_ptr<Scenario> scenario);

    /** Look up by exact name; nullptr when unknown. */
    const Scenario *find(const std::string &name) const;

    /** All scenarios, sorted by name. */
    std::vector<const Scenario *> scenarios() const;

    /** All names, sorted. */
    std::vector<std::string> names() const;

  private:
    ScenarioRegistry() = default;

    std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/**
 * Run one registered scenario end to end (beginScenario, run,
 * endScenario). Returns false without touching the sink when the
 * name is unknown.
 */
bool runScenario(const std::string &name, const RunOptions &options,
                 ResultSink &sink);

} // namespace codic

#endif // CODIC_SCENARIO_REGISTRY_H
