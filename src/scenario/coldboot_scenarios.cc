/**
 * @file
 * Cold-boot scenarios: the full-module destruction sweep (Fig. 7,
 * Section 6.2) and the overhead comparison against memory
 * encryption (Table 6).
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <array>

#include "coldboot/ciphers.h"
#include "coldboot/destruction.h"
#include "coldboot/overhead_model.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"

namespace codic {

namespace {

void
runFig7(RunContext &ctx)
{
    DestructionConfig dcfg;
    // Destruction traffic is homogeneous; scaled runs extrapolate
    // from fewer explicitly simulated rows (floor keeps a few tFAW
    // windows in the sample).
    dcfg.max_simulated_rows = static_cast<int64_t>(
        std::max<size_t>(512, ctx.scaled(65536)));

    const int64_t sizes_mb[] = {64, 256, 1024, 4096, 16384, 65536};
    const DestructionMechanism mechs[] = {
        DestructionMechanism::Tcg, DestructionMechanism::LisaClone,
        DestructionMechanism::RowClone, DestructionMechanism::Codic};

    for (int64_t mb : sizes_mb) {
        ResultRow row;
        row.add("module_mb", mb);
        for (auto mech : mechs) {
            const auto r = runDestruction(
                moduleFor(ctx.options(), mb,
                          ctx.options().channelsOr(1)),
                mech, dcfg);
            row.add(destructionMechanismName(mech) +
                        std::string("_ns"),
                    r.time_ns);
        }
        ctx.row("time to destroy all DRAM data", row);
    }
    ctx.note("Paper Fig. 7 anchors: TCG 34 ms @64MB ... 34.8 s "
             "@64GB; CODIC 60 us @64MB ... 63 ms @64GB.");

    const DramConfig dram = moduleFor(
        ctx.options(), ctx.options().capacityMbOr(8192),
        ctx.options().channelsOr(1));
    std::array<DestructionResult, 4> results;
    for (size_t m = 0; m < 4; ++m)
        results[m] = runDestruction(dram, mechs[m], dcfg);
    const DestructionResult &codic = results[3];
    for (size_t m = 0; m < 4; ++m) {
        ctx.row("8 GB module comparison (Section 6.2)",
                ResultRow()
                    .add("mechanism",
                         destructionMechanismName(mechs[m]))
                    .add("time_ns", results[m].time_ns)
                    .add("energy_nj", results[m].energy_nj)
                    .add("time_vs_codic",
                         results[m].time_ns / codic.time_ns)
                    .add("energy_vs_codic",
                         results[m].energy_nj / codic.energy_nj));
    }
    ctx.note("Paper: CODIC is 552.7x/2.5x/2.0x faster and "
             "41.7x/2.5x/1.7x lower energy than "
             "TCG/LISA-clone/RowClone.");

    const auto reuse = selfRefreshReuseTiming(dram);
    ctx.row("self-refresh-reuse implementation (Section 5.2.2)",
            ResultRow()
                .add("distributed_ns", reuse.distributed_ns)
                .add("burst_ns", reuse.burst_ns)
                .add("dedicated_engine_ns", codic.time_ns));
    ctx.note("Reusing the self-refresh circuitry destroys the module "
             "in one refresh pass - slower than the dedicated engine "
             "in exchange for near-zero added logic.");
}

void
runTable6(RunContext &ctx)
{
    for (auto d : {ColdBootDefense::CodicSelfDestruct,
                   ColdBootDefense::ChaCha8, ColdBootDefense::Aes128}) {
        const auto row = computeOverhead(d);
        ctx.row("overhead vs memory encryption (Atom N280 class)",
                ResultRow()
                    .add("mechanism", coldBootDefenseName(d))
                    .add("runtime_perf_pct", row.runtime_perf_pct)
                    .add("runtime_power_pct", row.runtime_power_pct)
                    .add("cpu_area_pct", row.cpu_area_pct)
                    .add("dram_area_pct", row.dram_area_pct));
    }
    ctx.note("Paper row order: CODIC ~0/~0/0.0/1.1; ChaCha-8 "
             "~0/~17/0.9/0; AES-128 ~0/~12/1.3/0 (AES-128 perf stays "
             "~0% assuming <=16 back-to-back row hits).");

    std::array<uint8_t, 32> ckey{};
    ckey[0] = 1;
    ChaCha chacha8(ckey, {}, 8);
    std::vector<uint8_t> msg(4096, 0xA5);
    const auto ct = chacha8.crypt(msg);
    ctx.row("cipher functional sanity",
            ResultRow()
                .add("cipher", "ChaCha-8")
                .add("round_trip_ok", chacha8.crypt(ct) == msg));

    std::array<uint8_t, 16> akey{};
    akey[0] = 2;
    Aes128 aes(akey);
    const auto act = aes.ctrCrypt({}, msg);
    ctx.row("cipher functional sanity",
            ResultRow()
                .add("cipher", "AES-128 CTR")
                .add("round_trip_ok", aes.ctrCrypt({}, act) == msg));
}

} // namespace

void
registerColdbootScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "coldboot_fig7_destruction",
        "Fig. 7 / Section 6.2: time and energy to destroy all DRAM "
        "data under TCG, LISA-clone, RowClone, and CODIC",
        runFig7));
    registry.add(makeScenario(
        "coldboot_table6_overhead",
        "Table 6: overhead of CODIC self-destruction vs ChaCha-8 and "
        "AES-128 memory encryption",
        runTable6));
}

} // namespace codic
