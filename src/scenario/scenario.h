/**
 * @file
 * The unified Scenario API: every paper figure/table campaign and
 * every ablation/extension study is a named Scenario that runs with
 * shared RunOptions and reports structured rows through a
 * ResultSink. `codic_run --scenario <name>` is the canonical way to
 * reproduce any paper artifact; the bench binaries are thin wrappers
 * over the same registry.
 *
 * Determinism: a scenario's structured (non-timing) output must be a
 * pure function of (seed, scale) - in particular independent of
 * RunOptions::threads. The test suite asserts byte-identical JSON at
 * 1 vs 8 threads for every registered scenario.
 */

#ifndef CODIC_SCENARIO_SCENARIO_H
#define CODIC_SCENARIO_SCENARIO_H

#include <functional>
#include <memory>
#include <string>

#include "common/result_sink.h"
#include "common/run_options.h"

namespace codic {

/** Everything a scenario needs while running. */
class RunContext
{
  public:
    RunContext(const RunOptions &options, ResultSink &sink)
        : options_(options), sink_(sink)
    {
    }

    const RunOptions &options() const { return options_; }

    /** Emit one result row into a named section. */
    void row(const std::string &section, const ResultRow &r)
    {
        sink_.row(section, r);
    }

    /** Emit one commentary line. */
    void note(const std::string &text) { sink_.note(text); }

    /** Scale a nominal trial count (see RunOptions::scaled). */
    size_t scaled(size_t nominal) const
    {
        return options_.scaled(nominal);
    }

    ResultSink &sink() { return sink_; }

  private:
    const RunOptions &options_;
    ResultSink &sink_;
};

/** One registered evaluation scenario. */
class Scenario
{
  public:
    virtual ~Scenario() = default;

    /** Stable registry key, e.g. "puf_fig5_jaccard". */
    virtual std::string name() const = 0;

    /** One-line human description (shown by `codic_run --list`). */
    virtual std::string describe() const = 0;

    /** Execute and report through ctx (never prints directly). */
    virtual void run(RunContext &ctx) const = 0;
};

/** Build a Scenario from a name, description, and run function. */
std::unique_ptr<Scenario>
makeScenario(std::string name, std::string describe,
             std::function<void(RunContext &)> fn);

} // namespace codic

#endif // CODIC_SCENARIO_SCENARIO_H
