/**
 * @file
 * Refresh-aware scheduling ablation (repository extension): sweeps
 * of the transaction-based controller's refresh and read-queue
 * knobs.
 *
 *  - Refresh postponement: with auto-injected REF every tREFI, how
 *    the JEDEC deferral allowance (up to 8 postponed REFs) trades
 *    mid-burst REF stalls against catch-up storms at burst onset,
 *    measured as read-latency percentiles over a bursty open-loop
 *    read stream.
 *  - Read-reordering window: how letting row-hit reads bypass older
 *    row-miss reads inside the FR-FCFS window collapses a
 *    row-conflict read stream's PRE/ACT thrash, measured as
 *    activations and read-latency percentiles.
 *
 * Determinism: every structured row is a pure function of
 * (seed, scale). The sweeps pin their own policy values, so --sched
 * does not change this scenario's output, and no CampaignEngine is
 * involved, so --threads cannot either.
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"
#include "dram/system.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "scenario/scheduler_workloads.h"

namespace codic {

namespace {

/** Latency samples (cycles) converted once to microseconds. */
std::vector<double>
latenciesUs(const DramConfig &cfg, const std::vector<Cycle> &lat)
{
    std::vector<double> us;
    us.reserve(lat.size());
    for (const Cycle c : lat)
        us.push_back(cfg.cyclesToNs(c) / 1e3);
    return us;
}

void
runAblationRefresh(RunContext &ctx)
{
    const int64_t capacity_mb = ctx.options().capacityMbOr(256);
    const int channels = ctx.options().channelsOr(1);

    // --- Sweep 1: REF postponement vs read-latency tail. ---
    {
        const int64_t bursts =
            static_cast<int64_t>(ctx.scaled(12));
        for (const int postpone : {0, 1, 2, 4, 8}) {
            DramConfig cfg =
                moduleFor(ctx.options(), capacity_mb, channels);
            cfg.scheduler = SchedulerPolicy::preset("batched");
            cfg.scheduler.auto_refresh = true;
            cfg.scheduler.refresh_postpone = postpone;
            DramSystem sys(cfg);
            // Each busy span covers ~2.5 tREFI (2000 reads, 8 cycles
            // apart), so 2-3 REFs fall due while reads are pending;
            // the postponement allowance decides whether they stall
            // the burst mid-stream or defer into the 4-tREFI quiet
            // gap that follows.
            const int reads_per_burst = 2000;
            const Cycle gap = 4 * cfg.timing.trefi;
            std::vector<Cycle> lat;
            const Cycle done = runRefreshReadWorkload(
                sys, bursts, reads_per_burst, 8, gap, &lat);
            const CommandCounts counts = sys.totalCounts();
            const double elapsed_intervals =
                static_cast<double>(done) /
                static_cast<double>(cfg.timing.trefi);
            const std::vector<double> us = latenciesUs(cfg, lat);
            ctx.row("refresh postponement vs read latency",
                    ResultRow()
                        .add("refresh_postpone", postpone)
                        .add("reads", counts.rd)
                        .add("refs", counts.ref)
                        .add("elapsed_trefi_intervals",
                             elapsed_intervals)
                        .add("read_p50_us", percentile(us, 50.0))
                        .add("read_p95_us", percentile(us, 95.0))
                        .add("read_max_us",
                             *std::max_element(us.begin(), us.end()))
                        .add("makespan_us",
                             cfg.cyclesToNs(done) / 1e3));
        }
        ctx.note("The controller injects REF per rank every tREFI. "
                 "REFs coming due while the channel is idle issue on "
                 "time for free; REFs coming due mid-burst are "
                 "deferrable up to refresh_postpone (JEDEC DDR3 "
                 "allows 8). A zero allowance pays every mid-burst "
                 "REF as a tRFC stall under pending reads; a "
                 "sufficient allowance slides them into the next "
                 "quiet gap, taking refresh off the read-latency "
                 "tail entirely.");
    }

    // --- Sweep 2: read-reordering window vs row-conflict thrash. ---
    {
        const int64_t waves = static_cast<int64_t>(ctx.scaled(60));
        const int wave_size = 16;
        for (const int window : {1, 2, 4, 8, 16}) {
            DramConfig cfg =
                moduleFor(ctx.options(), capacity_mb, channels);
            cfg.scheduler = SchedulerPolicy::preset("batched");
            cfg.scheduler.read_window = window;
            DramSystem sys(cfg);
            std::vector<Cycle> lat;
            const Cycle done = runReadWindowWorkload(
                sys, waves, wave_size, &lat);
            const CommandCounts counts = sys.totalCounts();
            const std::vector<double> us = latenciesUs(cfg, lat);
            double mean_us = 0.0;
            for (const double u : us)
                mean_us += u;
            mean_us /= static_cast<double>(us.size());
            ctx.row("read-reordering window vs row-conflict stream",
                    ResultRow()
                        .add("read_window", window)
                        .add("reads", counts.rd)
                        .add("activations", counts.act)
                        .add("read_mean_us", mean_us)
                        .add("read_p50_us", percentile(us, 50.0))
                        .add("read_p95_us", percentile(us, 95.0))
                        .add("makespan_us",
                             cfg.cyclesToNs(done) / 1e3));
        }
        ctx.note("read_window = 1 services the read queue in strict "
                 "arrival order, paying a PRE/ACT pair per "
                 "row-alternating read; a wider FR-FCFS window lets "
                 "row-hit reads bypass row-miss heads (bounded by "
                 "the starvation limit), regrouping each wave into "
                 "two row-hit runs.");
    }
}

} // namespace

void
registerRefreshScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "ablation_refresh",
        "Ablation: refresh-aware scheduling - tREFI postponement vs "
        "read-latency tail, and the FR-FCFS read-reordering window "
        "vs row-conflict thrash",
        runAblationRefresh));
}

} // namespace codic
