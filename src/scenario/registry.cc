#include "scenario/registry.h"

#include <algorithm>

#include "common/logging.h"
#include "scenario/builtin.h"

namespace codic {

namespace {

/** Scenario defined by a run function (how builtins are written). */
class FunctionScenario : public Scenario
{
  public:
    FunctionScenario(std::string name, std::string describe,
                     std::function<void(RunContext &)> fn)
        : name_(std::move(name)), describe_(std::move(describe)),
          fn_(std::move(fn))
    {
    }

    std::string name() const override { return name_; }
    std::string describe() const override { return describe_; }
    void run(RunContext &ctx) const override { fn_(ctx); }

  private:
    std::string name_;
    std::string describe_;
    std::function<void(RunContext &)> fn_;
};

} // namespace

std::unique_ptr<Scenario>
makeScenario(std::string name, std::string describe,
             std::function<void(RunContext &)> fn)
{
    return std::make_unique<FunctionScenario>(
        std::move(name), std::move(describe), std::move(fn));
}

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry *registry = [] {
        auto *r = new ScenarioRegistry();
        registerPufScenarios(*r);
        registerCircuitScenarios(*r);
        registerColdbootScenarios(*r);
        registerSecdeallocScenarios(*r);
        registerTrngScenarios(*r);
        registerExtScenarios(*r);
        registerFleetScenarios(*r);
        registerSchedulerScenarios(*r);
        registerRefreshScenarios(*r);
        registerTraceScenarios(*r);
        registerThermalScenarios(*r);
        return r;
    }();
    return *registry;
}

void
ScenarioRegistry::add(std::unique_ptr<Scenario> scenario)
{
    CODIC_ASSERT(scenario != nullptr);
    CODIC_ASSERT(find(scenario->name()) == nullptr,
                 "duplicate scenario name");
    scenarios_.push_back(std::move(scenario));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &s : scenarios_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

std::vector<const Scenario *>
ScenarioRegistry::scenarios() const
{
    std::vector<const Scenario *> out;
    out.reserve(scenarios_.size());
    for (const auto &s : scenarios_)
        out.push_back(s.get());
    std::sort(out.begin(), out.end(),
              [](const Scenario *a, const Scenario *b) {
                  return a->name() < b->name();
              });
    return out;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    for (const Scenario *s : scenarios())
        out.push_back(s->name());
    return out;
}

bool
runScenario(const std::string &name, const RunOptions &options,
            ResultSink &sink)
{
    const Scenario *scenario = ScenarioRegistry::instance().find(name);
    if (!scenario)
        return false;
    // Out-of-contract options are a user error: reject them before
    // the sink opens, so failed validation leaves it untouched.
    options.validate();
    sink.beginScenario(scenario->name(), scenario->describe(),
                       options);
    RunContext ctx(options, sink);
    // On failure: mark the block so machine-readable output is
    // distinguishable from a successful run even without the exit
    // code, close it so the document stays well-formed, and let the
    // caller handle the failure (codic_run --all reports a
    // per-scenario summary).
    try {
        scenario->run(ctx);
    } catch (const std::exception &e) {
        sink.note(std::string("ERROR: scenario failed: ") + e.what());
        sink.endScenario();
        throw;
    } catch (...) {
        sink.note("ERROR: scenario failed");
        sink.endScenario();
        throw;
    }
    sink.endScenario();
    return true;
}

} // namespace codic
