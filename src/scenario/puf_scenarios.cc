/**
 * @file
 * PUF scenarios: paper Fig. 5/6, Table 4, the Section 6.1
 * methodology (coverage + retention emulation), authentication,
 * aging, and the filter-depth ablation.
 */

#include "scenario/builtin.h"

#include "common/rng.h"
#include "common/stats.h"
#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/prelat_puf.h"
#include "puf/response_time.h"
#include "puf/retention.h"
#include "puf/sig_puf.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"

namespace codic {

namespace {

/** The three PUFs every comparative campaign sweeps. */
struct PufSet
{
    DramLatencyPuf latency;
    PrelatPuf prelat;
    CodicSigPuf sig;

    std::vector<std::pair<const DramPuf *, const char *>> all() const
    {
        return {{&latency, "DRAM Latency PUF"},
                {&prelat, "PreLatPUF"},
                {&sig, "CODIC-sig PUF"}};
    }
};

std::string
histLine(const std::vector<double> &values)
{
    Histogram h(0.0, 1.0 + 1e-9, 25);
    for (double v : values)
        h.add(v);
    return h.ascii();
}

void
runFig5(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const PufSet pufs;
    const size_t pairs = ctx.scaled(10000);

    for (bool ddr3l : {false, true}) {
        const auto subset = filterByVoltage(chips, ddr3l);
        const std::string section = ddr3l
                                        ? "DDR3L 1.35V Jaccard indices"
                                        : "DDR3 1.50V Jaccard indices";
        for (const auto &[puf, name] : pufs.all()) {
            JaccardCampaignConfig cfg;
            cfg.run.seed = paperSeed(ctx.options(), 7);
            cfg.run.threads = ctx.options().threads;
            cfg.pairs = pairs;
            const auto r = runJaccardCampaign(*puf, subset, cfg);
            ctx.row(section,
                    ResultRow()
                        .add("puf", name)
                        .add("chips", subset.size())
                        .add("pairs", pairs)
                        .add("intra_mean", r.intraStats().mean())
                        .add("intra_p5", percentile(r.intra, 5.0))
                        .add("inter_mean", r.interStats().mean())
                        .add("inter_p95", percentile(r.inter, 95.0))
                        .add("intra_hist", histLine(r.intra))
                        .add("inter_hist", histLine(r.inter)));
        }
    }
    ctx.note("Paper Fig. 5: CODIC-sig combines high Intra-Jaccard "
             "(repeatability) with low Inter-Jaccard (uniqueness); "
             "PreLatPUF's column-shared structure shows as high "
             "Inter-Jaccard.");
}

void
runCoverage(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const CoverageStats cov = coverageStats(chips);
    ctx.row("methodology coverage across chips",
            ResultRow()
                .add("chips", chips.size())
                .add("min_coverage", cov.min_coverage)
                .add("max_coverage", cov.max_coverage)
                .add("min_flip_fraction", cov.min_flip_fraction)
                .add("max_flip_fraction", cov.max_flip_fraction));
    ctx.note("Paper Section 6.1: CODIC value coverage 34%-99% across "
             "chips, flip-cell fraction 0.01%-0.22%.");
}

void
runAuth(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const CodicSigPuf sig;
    RunOptions run = ctx.options();
    run.seed = paperSeed(ctx.options(), 21);
    const size_t trials = ctx.scaled(10000);
    const AuthRates rates = runAuthCampaign(sig, all, trials, run);
    ctx.row("naive exact-match authentication",
            ResultRow()
                .add("trials", trials)
                .add("false_rejection", rates.false_rejection)
                .add("false_acceptance", rates.false_acceptance));
    ctx.note("Paper Section 6.1.1: 0.64% false rejection, 0.00% "
             "false acceptance.");
}

void
runFig6(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const PufSet pufs;
    RunOptions run = ctx.options();
    run.seed = paperSeed(ctx.options(), 5);
    const size_t pairs = ctx.scaled(2000);

    for (const auto &[puf, name] : pufs.all()) {
        ResultRow row;
        row.add("puf", name);
        for (double delta : {0.0, 15.0, 25.0, 55.0}) {
            RunningStats s;
            for (double v :
                 runTemperatureCampaign(*puf, all, delta, pairs, run))
                s.add(v);
            row.add("dT=" + std::to_string(static_cast<int>(delta)),
                    s.mean());
        }
        ctx.row("Intra-Jaccard vs temperature delta from 30 C", row);
    }
    ctx.note("Paper Fig. 6: CODIC-sig stays high even at dT = 55 C; "
             "PreLatPUF is the most robust (at the cost of poor "
             "uniqueness); the DRAM Latency PUF degrades strongly.");
}

void
runAging(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const PufSet pufs;
    RunOptions run = ctx.options();
    run.seed = paperSeed(ctx.options(), 9);
    const size_t pairs = ctx.scaled(2000);

    for (const auto &[puf, name] : pufs.all()) {
        RunningStats s;
        for (double v : runAgingCampaign(*puf, all, pairs, run))
            s.add(v);
        ctx.row("Intra-Jaccard after accelerated aging (125 C)",
                ResultRow()
                    .add("puf", name)
                    .add("intra_mean", s.mean()));
    }
    ctx.note("Paper Section 6.1.1: the CODIC-sig PUF is very robust "
             "to aging; most indices are 1.");
}

void
runTable4(RunContext &ctx)
{
    const DramConfig cfg =
        moduleFor(ctx.options(), ctx.options().capacityMbOr(2048),
                  ctx.options().channelsOr(1));
    struct Entry
    {
        const char *name;
        PufKind kind;
        bool has_unfiltered;
        const char *paper;
    };
    const Entry entries[] = {
        {"DRAM Latency PUF", PufKind::Latency, false, "88.2 ms"},
        {"PreLatPUF", PufKind::Prelat, true, "7.95 (1.59) ms"},
        {"CODIC-sig PUF", PufKind::CodicSig, true, "4.41 (0.88) ms"},
        {"CODIC-sig-opt PUF", PufKind::CodicSigOpt, true, "(n/a)"},
    };
    for (const auto &e : entries) {
        const EvalTime filt = evaluationTime(e.kind, true, cfg);
        const EvalTime raw = evaluationTime(e.kind, false, cfg);
        ctx.row("PUF evaluation time, 8 KB segments",
                ResultRow()
                    .add("puf", e.name)
                    .add("softmc_filtered_ms", filt.softmc_ms)
                    .add("has_unfiltered_mode", e.has_unfiltered)
                    .add("softmc_unfiltered_ms", raw.softmc_ms)
                    .add("paper", e.paper)
                    .add("native_filtered_ns", filt.native_ns)
                    .add("native_unfiltered_ns", raw.native_ns));
    }

    const double lat =
        evaluationTime(PufKind::Latency, true, cfg).softmc_ms;
    const double pre =
        evaluationTime(PufKind::Prelat, true, cfg).softmc_ms;
    const double sig =
        evaluationTime(PufKind::CodicSig, true, cfg).softmc_ms;
    const double sig_raw =
        evaluationTime(PufKind::CodicSig, false, cfg).softmc_ms;
    ctx.row("ratios (paper Section 6.1.2)",
            ResultRow()
                .add("sig_vs_latency_filtered", lat / sig)
                .add("sig_vs_latency_unfiltered", lat / sig_raw)
                .add("sig_vs_prelat", pre / sig));
    ctx.note("Paper: CODIC-sig is 20x (filtered) / 100x (unfiltered) "
             "faster than the Latency PUF and 1.8x faster than "
             "PreLatPUF.");
}

double
exactMatchFrr(const DramPuf &puf,
              const std::vector<const SimulatedChip *> &chips,
              size_t trials, uint64_t seed)
{
    Rng rng(seed);
    size_t mismatches = 0;
    for (size_t i = 0; i < trials; ++i) {
        const SimulatedChip *chip =
            chips[static_cast<size_t>(rng.below(chips.size()))];
        Challenge ch{rng.below(chip->segments()), 65536};
        const Response a = puf.evaluateFiltered(
            *chip, ch, {30.0, false, rng.next64()});
        const Response b = puf.evaluateFiltered(
            *chip, ch, {30.0, false, rng.next64()});
        if (!(a == b))
            ++mismatches;
    }
    return static_cast<double>(mismatches) /
           static_cast<double>(trials);
}

void
runAblationFilter(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const double pass_ms = 0.882; // SoftMC pass cost (Table 4).

    const size_t sig_trials = ctx.scaled(4000);
    for (int depth : {1, 3, 5, 7, 9}) {
        SigPufParams params;
        params.filter_challenges = depth;
        CodicSigPuf puf(params);
        const double frr = exactMatchFrr(
            puf, all, sig_trials, paperSeed(ctx.options(), 17));
        ctx.row("CODIC-sig filter depth",
                ResultRow()
                    .add("filter_challenges", depth)
                    .add("exact_match_frr", frr)
                    .add("softmc_eval_ms", pass_ms * depth));
    }
    ctx.note("The paper's conservative depth of 5 eliminates response "
             "noise at 4.41 ms.");

    const size_t lat_trials = ctx.scaled(1500);
    for (int reads : {5, 10, 25, 50, 100}) {
        LatencyPufParams params;
        params.reads = reads;
        params.filter_threshold = reads * 9 / 10;
        DramLatencyPuf puf(params);
        const double frr = exactMatchFrr(
            puf, all, lat_trials, paperSeed(ctx.options(), 19));
        ctx.row("DRAM Latency PUF read count",
                ResultRow()
                    .add("reads", reads)
                    .add("filter_threshold", params.filter_threshold)
                    .add("exact_match_frr", frr)
                    .add("softmc_eval_ms", pass_ms * reads));
    }
    ctx.note("A 5-10 read Latency PUF approaches CODIC-sig's latency "
             "but its responses are far less repeatable - the "
             "quality/latency trade-off of Section 6.1.1.");
}

void
runRetention(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    RetentionExperimentConfig cfg;
    cfg.sample_cells =
        static_cast<int>(ctx.scaled(static_cast<size_t>(
            cfg.sample_cells)));

    for (size_t i = 0; i < chips.size(); i += 17) {
        const auto r = runRetentionExperiment(chips[i], cfg);
        ctx.row("48 h refresh-disable emulation (sampled chips)",
                ResultRow()
                    .add("module", chips[i].spec().module)
                    .add("chip", i)
                    .add("median_retention_h",
                         chipRetentionMedianHours(chips[i]))
                    .add("coverage", r.coverage())
                    .add("flip_fraction", r.flipFraction()));
    }

    RunningStats coverage;
    RunningStats flips;
    const size_t band_chips = ctx.scaled(chips.size());
    for (size_t i = 0; i < band_chips; ++i) {
        const auto r = runRetentionExperiment(chips[i], cfg);
        coverage.add(r.coverage());
        flips.add(r.flipFraction());
    }
    ctx.row("coverage band across population",
            ResultRow()
                .add("chips", band_chips)
                .add("min_coverage", coverage.min())
                .add("max_coverage", coverage.max())
                .add("min_flip_fraction", flips.min())
                .add("max_flip_fraction", flips.max()));

    RetentionExperimentConfig cfg4 = cfg;
    cfg4.wait_hours = 4.0;
    cfg4.temperature_c = 85.0;
    ctx.row("temperature experiments use a 4 h wait",
            ResultRow()
                .add("condition", "48 h at 30 C")
                .add("coverage_chip0",
                     runRetentionExperiment(chips[0], cfg).coverage()));
    ctx.row("temperature experiments use a 4 h wait",
            ResultRow()
                .add("condition", "4 h at 85 C")
                .add("coverage_chip0",
                     runRetentionExperiment(chips[0], cfg4)
                         .coverage()));
    ctx.note("Cells discharge faster at high temperature, so a short "
             "wait suffices - the paper's justification for the 4 h "
             "window (Section 6.1.1).");
}

} // namespace

void
registerPufScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "puf_fig5_jaccard",
        "Fig. 5: Intra-/Inter-Jaccard distributions of the three "
        "PUFs over the DDR3 and DDR3L chip populations",
        runFig5));
    registry.add(makeScenario(
        "puf_coverage",
        "Section 6.1: CODIC value coverage and flip-cell fraction "
        "bands across the 136-chip population",
        runCoverage));
    registry.add(makeScenario(
        "puf_auth",
        "Section 6.1.1: naive exact-match authentication false "
        "rejection/acceptance rates",
        runAuth));
    registry.add(makeScenario(
        "puf_fig6_temperature",
        "Fig. 6: Intra-Jaccard vs temperature delta for the three "
        "PUFs",
        runFig6));
    registry.add(makeScenario(
        "puf_aging",
        "Section 6.1.1: Intra-Jaccard after accelerated aging (125 C "
        "stress)",
        runAging));
    registry.add(makeScenario(
        "puf_table4_response_time",
        "Table 4: PUF evaluation time at SoftMC and native "
        "command-level scales",
        runTable4));
    registry.add(makeScenario(
        "puf_ablation_filter",
        "Ablation: CODIC-sig filter depth and Latency-PUF read count "
        "vs exact-match FRR and evaluation time",
        runAblationFilter));
    registry.add(makeScenario(
        "puf_retention_methodology",
        "Section 6.1 methodology: 48 h refresh-disable emulation "
        "with the two-scenario conclusiveness test",
        runRetention));
}

} // namespace codic
