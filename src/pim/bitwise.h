/**
 * @file
 * Processing-in-memory enablement (paper Section 5.3.3): Ambit-style
 * bulk bitwise operations (AND/OR via triple-row activation, NOT via
 * dual-contact cells) and RowClone copies, executed as command
 * sequences over the cycle-accurate channel.
 *
 * The paper's motivation (Section 1): ComputeDRAM demonstrated these
 * operations on commodity chips by violating DDRx timings, but "only
 * a small fraction of the cells can reliably perform the intended
 * computations" because the internal signal timing is neither visible
 * nor controllable. With CODIC, the triple activation runs with
 * explicit internal timings, making the operation reliable for every
 * cell. Both modes are modeled here: CODIC mode computes exactly;
 * ComputeDRAM mode corrupts a per-cell-deterministic subset of bits,
 * reproducing the reliability gap.
 */

#ifndef CODIC_PIM_BITWISE_H
#define CODIC_PIM_BITWISE_H

#include <cstdint>
#include <map>
#include <vector>

#include "dram/channel.h"

namespace codic {

/** An 8 KB row payload as 1024 64-bit words. */
using RowPayload = std::vector<uint64_t>;

/** How triple-row activation is triggered. */
enum class PimMode
{
    Codic,       //!< Explicit internal timings: reliable everywhere.
    ComputeDram, //!< DDRx timing violations: per-cell unreliable.
};

/**
 * In-DRAM bitwise execution unit for one bank, in the style of Ambit
 * [136] with a designated compute-row group: T0-T3 scratch rows, C0
 * (all zeros), C1 (all ones), and a dual-contact row for NOT.
 *
 * Row contents are tracked by this unit (the channel tracks only
 * data-state tags); every operation issues its real command sequence
 * through the channel, so latency/energy come from the JEDEC-checked
 * timing model.
 */
class AmbitUnit
{
  public:
    /**
     * @param channel Channel to execute on.
     * @param bank Bank this unit operates in.
     * @param mode Reliable CODIC timing or ComputeDRAM violations.
     * @param unreliable_cell_fraction In ComputeDRAM mode, the
     *        fraction of cells that cannot perform the computation
     *        (paper Section 1: "a vast majority of cells" fail on
     *        many chips; default models a mid-range chip).
     */
    AmbitUnit(DramChannel &channel, int bank,
              PimMode mode = PimMode::Codic,
              double unreliable_cell_fraction = 0.4);

    /** Write a payload into a row (through the column interface). */
    Cycle writeRow(int64_t row, const RowPayload &data, Cycle at);

    /** Current contents of a row (zeros if never written). */
    RowPayload readRow(int64_t row) const;

    /** dst = src (RowClone FPM copy). */
    Cycle copy(int64_t src, int64_t dst, Cycle at);

    /** dst = a & b (Ambit AND via majority with C0). */
    Cycle bitwiseAnd(int64_t a, int64_t b, int64_t dst, Cycle at);

    /** dst = a | b (Ambit OR via majority with C1). */
    Cycle bitwiseOr(int64_t a, int64_t b, int64_t dst, Cycle at);

    /** dst = ~src (dual-contact-cell NOT). */
    Cycle bitwiseNot(int64_t src, int64_t dst, Cycle at);

    /** First row index reserved for the compute group. */
    static constexpr int64_t kT0 = 0;
    static constexpr int64_t kT1 = 1;
    static constexpr int64_t kT2 = 2;
    static constexpr int64_t kC0 = 3; //!< All zeros.
    static constexpr int64_t kC1 = 4; //!< All ones.
    static constexpr int64_t kDcc = 5; //!< Dual-contact row.
    static constexpr int64_t kFirstDataRow = 6;

    /** Words per 8 KB row. */
    static constexpr size_t kWordsPerRow = 1024;

  private:
    /** AAP: activate src, clone into dst, precharge (Ambit's copy). */
    Cycle aap(int64_t src, int64_t dst, Cycle at);

    /** Triple-row activation computing majority(T0, T1, T2) in T0. */
    Cycle tripleActivate(Cycle at);

    /** Apply per-cell corruption in ComputeDRAM mode. */
    void corrupt(RowPayload &data) const;

    DramChannel &channel_;
    int bank_;
    PimMode mode_;
    double unreliable_fraction_;
    int triple_variant_;
    std::map<int64_t, RowPayload> contents_;
};

/** Fraction of bits that differ between two payloads. */
double bitErrorRate(const RowPayload &a, const RowPayload &b);

} // namespace codic

#endif // CODIC_PIM_BITWISE_H
