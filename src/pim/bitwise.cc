#include "pim/bitwise.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace codic {

namespace {

/** Deterministic per-cell corruption mask word. */
uint64_t
corruptionMask(uint64_t seed, int bank, int64_t word, double fraction)
{
    SplitMix64 sm(seed ^ (static_cast<uint64_t>(bank) << 56) ^
                  static_cast<uint64_t>(word) * 0x2545f4914f6cdd1dULL);
    uint64_t mask = 0;
    for (int bit = 0; bit < 64; ++bit) {
        // Cell is unreliable with the given probability; unreliable
        // cells do not perform the computation (their result is
        // effectively random - modeled as a flip of the true result
        // half the time, i.e. corruption of fraction/2 of the bits).
        const uint64_t u = sm.next();
        const bool unreliable =
            static_cast<double>(u >> 11) * 0x1.0p-53 < fraction;
        const bool flips = (u & 1) != 0;
        if (unreliable && flips)
            mask |= 1ull << bit;
    }
    return mask;
}

} // namespace

double
bitErrorRate(const RowPayload &a, const RowPayload &b)
{
    CODIC_ASSERT(a.size() == b.size());
    uint64_t errors = 0;
    for (size_t i = 0; i < a.size(); ++i)
        errors += static_cast<uint64_t>(
            __builtin_popcountll(a[i] ^ b[i]));
    return static_cast<double>(errors) /
           (static_cast<double>(a.size()) * 64.0);
}

AmbitUnit::AmbitUnit(DramChannel &channel, int bank, PimMode mode,
                     double unreliable_cell_fraction)
    : channel_(channel), bank_(bank), mode_(mode),
      unreliable_fraction_(unreliable_cell_fraction)
{
    // The triple activation runs as an activation-class CODIC command
    // with explicit internal timing (the whole point of Section
    // 5.3.3); in ComputeDRAM mode the same sequence is modeled with
    // the same external timing but unreliable internal behaviour.
    SignalSchedule s;
    s.set(Signal::Wl, 5, 22);
    s.set(Signal::SenseP, 8, 22);
    s.set(Signal::SenseN, 8, 22);
    triple_variant_ = channel_.registerVariant(s);

    contents_[kC0] = RowPayload(kWordsPerRow, 0);
    contents_[kC1] = RowPayload(kWordsPerRow, ~0ull);
}

RowPayload
AmbitUnit::readRow(int64_t row) const
{
    const auto it = contents_.find(row);
    if (it == contents_.end())
        return RowPayload(kWordsPerRow, 0);
    return it->second;
}

Cycle
AmbitUnit::writeRow(int64_t row, const RowPayload &data, Cycle at)
{
    CODIC_ASSERT(data.size() == kWordsPerRow);
    Command act;
    act.type = CommandType::Act;
    act.addr.bank = bank_;
    act.addr.row = row;
    const Cycle ready = channel_.issueAtEarliest(act, at);
    Cycle last = ready;
    for (int col = 0; col < channel_.config().columns; ++col) {
        Command wr;
        wr.type = CommandType::Wr;
        wr.addr.bank = bank_;
        wr.addr.row = row;
        wr.addr.column = col;
        last = channel_.issueAtEarliest(wr, ready);
    }
    Command pre;
    pre.type = CommandType::Pre;
    pre.addr.bank = bank_;
    pre.addr.row = row;
    contents_[row] = data;
    return channel_.issueAtEarliest(pre, last);
}

Cycle
AmbitUnit::aap(int64_t src, int64_t dst, Cycle at)
{
    Command act;
    act.type = CommandType::Act;
    act.addr.bank = bank_;
    act.addr.row = src;
    channel_.issueAtEarliest(act, at);
    Command clone;
    clone.type = CommandType::RowClone;
    clone.addr.bank = bank_;
    clone.addr.row = dst;
    channel_.issueAtEarliest(clone, at);
    Command pre;
    pre.type = CommandType::Pre;
    pre.addr.bank = bank_;
    pre.addr.row = dst;
    const Cycle done = channel_.issueAtEarliest(pre, at);
    contents_[dst] = readRow(src);
    return done;
}

Cycle
AmbitUnit::tripleActivate(Cycle at)
{
    Command codic;
    codic.type = CommandType::Codic;
    codic.addr.bank = bank_;
    codic.addr.row = kT0;
    codic.codic_variant = triple_variant_;
    const Cycle ready = channel_.issueAtEarliest(codic, at);
    Command pre;
    pre.type = CommandType::Pre;
    pre.addr.bank = bank_;
    pre.addr.row = kT0;
    const Cycle done = channel_.issueAtEarliest(pre, ready);

    // Majority of the three simultaneously activated rows lands in
    // all three (the charge-sharing result); we only use T0.
    const RowPayload a = readRow(kT0);
    const RowPayload b = readRow(kT1);
    const RowPayload c = readRow(kT2);
    RowPayload maj(kWordsPerRow);
    for (size_t i = 0; i < kWordsPerRow; ++i)
        maj[i] = (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i]);
    if (mode_ == PimMode::ComputeDram)
        corrupt(maj);
    contents_[kT0] = maj;
    return done;
}

void
AmbitUnit::corrupt(RowPayload &data) const
{
    for (size_t w = 0; w < data.size(); ++w) {
        data[w] ^= corruptionMask(0xC0FFEE, bank_,
                                  static_cast<int64_t>(w),
                                  unreliable_fraction_);
    }
}

Cycle
AmbitUnit::copy(int64_t src, int64_t dst, Cycle at)
{
    return aap(src, dst, at);
}

Cycle
AmbitUnit::bitwiseAnd(int64_t a, int64_t b, int64_t dst, Cycle at)
{
    Cycle t = aap(a, kT0, at);
    t = aap(b, kT1, t);
    t = aap(kC0, kT2, t); // Control zero: majority == AND.
    t = tripleActivate(t);
    return aap(kT0, dst, t);
}

Cycle
AmbitUnit::bitwiseOr(int64_t a, int64_t b, int64_t dst, Cycle at)
{
    Cycle t = aap(a, kT0, at);
    t = aap(b, kT1, t);
    t = aap(kC1, kT2, t); // Control one: majority == OR.
    t = tripleActivate(t);
    return aap(kT0, dst, t);
}

Cycle
AmbitUnit::bitwiseNot(int64_t src, int64_t dst, Cycle at)
{
    // Dual-contact cell: activating the source row with the DCC row's
    // negated port connected inverts into the DCC row (Ambit [136]);
    // one AAP out.
    Cycle t = aap(src, kDcc, at);
    RowPayload inv = readRow(kDcc);
    for (auto &w : inv)
        w = ~w;
    if (mode_ == PimMode::ComputeDram)
        corrupt(inv);
    contents_[kDcc] = inv;
    return aap(kDcc, dst, t);
}

} // namespace codic
