#include "sim/workloads.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace codic {

namespace {

constexpr uint64_t kRowBytes = 8192;
constexpr uint64_t kLineBytes = 64;

} // namespace

Workload
generateWorkload(const WorkloadParams &params)
{
    Rng rng(params.seed ^ 0xB0B0);
    Workload w;
    w.name = params.name;
    w.ops.reserve(params.phases *
                  (static_cast<size_t>(params.loads_per_phase +
                                       params.stores_per_phase) +
                   params.alloc_bytes_per_phase / kLineBytes / 4 + 4));

    // Bump allocator over the upper half of the footprint; the lower
    // half is the long-lived working set.
    const uint64_t ws_bytes = params.footprint_bytes / 2;
    const uint64_t heap_base = ws_bytes;
    const uint64_t heap_bytes = params.footprint_bytes - ws_bytes;
    uint64_t heap_cursor = 0;
    uint64_t stream_cursor = 0;

    for (size_t phase = 0; phase < params.phases; ++phase) {
        // Compute burst.
        if (params.compute_per_phase)
            w.ops.push_back(
                {OpType::Compute, 0, params.compute_per_phase});

        // Working-set access mix.
        for (int i = 0; i < params.loads_per_phase; ++i) {
            uint64_t addr;
            if (rng.uniform() < params.sequential_fraction) {
                addr = stream_cursor % ws_bytes;
                stream_cursor += kLineBytes;
            } else {
                addr = rng.below(ws_bytes / kLineBytes) * kLineBytes;
            }
            w.ops.push_back({OpType::Load, addr, 0});
        }
        for (int i = 0; i < params.stores_per_phase; ++i) {
            const uint64_t addr =
                rng.below(ws_bytes / kLineBytes) * kLineBytes;
            w.ops.push_back({OpType::Store, addr, 0});
        }

        // Allocation lifetime: allocate a row-aligned region, write
        // it (the data that later must not leak), then deallocate.
        if (params.alloc_bytes_per_phase > 0) {
            const uint64_t bytes =
                (params.alloc_bytes_per_phase + kRowBytes - 1) /
                kRowBytes * kRowBytes;
            if (heap_cursor + bytes > heap_bytes)
                heap_cursor = 0;
            const uint64_t base = heap_base + heap_cursor;
            heap_cursor += bytes;
            // The program touches ~1/4 of the allocated lines.
            for (uint64_t a = base; a < base + bytes;
                 a += 4 * kLineBytes)
                w.ops.push_back({OpType::Store, a, 0});
            w.ops.push_back({OpType::DeallocRegion, base, bytes});
        }
    }
    return w;
}

WorkloadParams
benchmarkParams(const std::string &name, uint64_t seed)
{
    WorkloadParams p;
    p.name = name;
    p.seed = seed;

    // --- Allocation-intensive benchmarks (Table 8). ---
    // Allocation sizes and compute bursts are balanced so that
    // deallocation zeroing accounts for ~7-18 % of baseline runtime,
    // reproducing the 5-21 % speedup band of paper Fig. 8.
    if (name == "mysql") {
        // Loading a database: large buffers allocated and recycled.
        p.footprint_bytes = 96ull << 20;
        p.phases = 150;
        p.compute_per_phase = 215000;
        p.loads_per_phase = 400;
        p.stores_per_phase = 80;
        p.alloc_bytes_per_phase = 8192;
    } else if (name == "memcached") {
        // Object cache: many medium object allocations.
        p.footprint_bytes = 128ull << 20;
        p.phases = 150;
        p.compute_per_phase = 250000;
        p.loads_per_phase = 420;
        p.stores_per_phase = 80;
        p.alloc_bytes_per_phase = 8192;
        p.sequential_fraction = 0.2;
    } else if (name == "compiler") {
        // GCC compilation: frequent small arena allocations,
        // compute-heavy in between.
        p.footprint_bytes = 48ull << 20;
        p.phases = 150;
        p.compute_per_phase = 420000;
        p.loads_per_phase = 300;
        p.stores_per_phase = 70;
        p.alloc_bytes_per_phase = 8192;
    } else if (name == "bootup") {
        // Kernel boot: page-allocator churn with little compute.
        p.footprint_bytes = 64ull << 20;
        p.phases = 120;
        p.compute_per_phase = 360000;
        p.loads_per_phase = 500;
        p.stores_per_phase = 120;
        p.alloc_bytes_per_phase = 16384;
        p.sequential_fraction = 0.7;
    } else if (name == "shell") {
        // find | ls script: process spawn/exit churn.
        p.footprint_bytes = 24ull << 20;
        p.phases = 150;
        p.compute_per_phase = 330000;
        p.loads_per_phase = 300;
        p.stores_per_phase = 60;
        p.alloc_bytes_per_phase = 8192;
    } else if (name == "malloc") {
        // stress-ng malloc stressor: allocation is the workload.
        p.footprint_bytes = 128ull << 20;
        p.phases = 150;
        p.compute_per_phase = 250000;
        p.loads_per_phase = 500;
        p.stores_per_phase = 120;
        p.alloc_bytes_per_phase = 16384;

    // --- Background benchmarks (no deallocation traffic). ---
    } else if (name == "tpcc64" || name == "tpch") {
        p.footprint_bytes = 128ull << 20;
        p.phases = 600;
        p.compute_per_phase = 60000;
        p.loads_per_phase = 180;
        p.stores_per_phase = 60;
        p.sequential_fraction = 0.1;
    } else if (name == "stream" || name == "lbm") {
        p.footprint_bytes = 64ull << 20;
        p.phases = 600;
        p.compute_per_phase = 30000;
        p.loads_per_phase = 220;
        p.stores_per_phase = 90;
        p.sequential_fraction = 0.95;
    } else if (name == "libquantum" || name == "bzip2" ||
               name == "astar" || name == "xalancbmk" ||
               name == "condmat") {
        p.footprint_bytes = 32ull << 20;
        p.phases = 600;
        p.compute_per_phase = 110000;
        p.loads_per_phase = 110;
        p.stores_per_phase = 35;
        p.sequential_fraction = 0.4;
    } else if (name == "pagerank" || name == "bfs") {
        p.footprint_bytes = 96ull << 20;
        p.phases = 600;
        p.compute_per_phase = 50000;
        p.loads_per_phase = 200;
        p.stores_per_phase = 30;
        p.sequential_fraction = 0.05;
    } else {
        fatal("unknown benchmark name: ", name);
    }
    return p;
}

std::vector<std::string>
allocationIntensiveBenchmarks()
{
    return {"mysql", "memcached", "compiler", "bootup", "shell",
            "malloc"};
}

std::vector<std::string>
backgroundBenchmarks()
{
    return {"tpcc64",    "tpch",  "stream", "libquantum", "xalancbmk",
            "bzip2",     "astar", "lbm",    "condmat",    "pagerank",
            "bfs"};
}

namespace {

WorkloadMix
buildMix(const std::string &name, const std::vector<std::string> &benches,
         uint64_t seed)
{
    CODIC_ASSERT(benches.size() == 4);
    WorkloadMix mix;
    mix.name = name;
    for (size_t i = 0; i < benches.size(); ++i) {
        mix.traces.push_back(generateWorkload(
            benchmarkParams(benches[i], seed * 977 + i)));
    }
    return mix;
}

} // namespace

std::vector<WorkloadMix>
representativeMixes(uint64_t seed)
{
    // Paper Table 9.
    return {
        buildMix("MIX1", {"malloc", "bootup", "tpcc64", "libquantum"},
                 seed + 1),
        buildMix("MIX2", {"shell", "bootup", "lbm", "xalancbmk"},
                 seed + 2),
        buildMix("MIX3", {"bootup", "shell", "pagerank", "pagerank"},
                 seed + 3),
        buildMix("MIX4", {"malloc", "shell", "xalancbmk", "bzip2"},
                 seed + 4),
        buildMix("MIX5", {"malloc", "malloc", "astar", "condmat"},
                 seed + 5),
    };
}

std::vector<WorkloadMix>
randomMixes(size_t count, uint64_t seed)
{
    Rng rng(seed);
    const auto intensive = allocationIntensiveBenchmarks();
    const auto background = backgroundBenchmarks();
    std::vector<WorkloadMix> mixes;
    mixes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::vector<std::string> picks = {
            intensive[static_cast<size_t>(rng.below(intensive.size()))],
            intensive[static_cast<size_t>(rng.below(intensive.size()))],
            background[static_cast<size_t>(
                rng.below(background.size()))],
            background[static_cast<size_t>(
                rng.below(background.size()))],
        };
        mixes.push_back(
            buildMix("RMIX" + std::to_string(i), picks, seed + 100 + i));
    }
    return mixes;
}

} // namespace codic
