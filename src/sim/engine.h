/**
 * @file
 * Tick-driven co-simulation core: one discrete-event loop advancing
 * any number of request producers against a shared MemoryService, in
 * the dramsim3 frontend style (submit without blocking, learn
 * completions through callbacks, tick in global-time order).
 *
 * The existing consumers (paper campaigns, secdealloc cores, fleet
 * replay) block per owner on completionOf(); that pattern cannot
 * interleave N independent producers over one DramSystem. The
 * TickEngine closes that gap: each producer exposes the cycle of its
 * next action, the engine always ticks the globally earliest one
 * (ties break by registration index, so the interleave - and every
 * byte of downstream output - is a pure function of the producer set,
 * never of the host's thread count), and epoch boundaries fire a
 * hook for the thermal feedback loop (thermal/thermal_model.h).
 *
 * Producers come in two styles:
 *  - blocking consumers wrapped as producers (CoreProducer): the
 *    wrapped InOrderCore still blocks inside one step, but steps of
 *    different cores interleave in timestamp order, which is how
 *    multi-core contention shares the FR-FCFS front-end;
 *  - callback consumers (CallbackReadSource, StormSource): submit at
 *    their own pace and observe completions via
 *    MemoryService::onComplete, never blocking. Callbacks must not
 *    re-enter the service (see onComplete contract): they record the
 *    event, and the producer acts on its next tick.
 */

#ifndef CODIC_SIM_ENGINE_H
#define CODIC_SIM_ENGINE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/service.h"
#include "sim/core.h"

namespace codic {

/** One request producer advanced by the TickEngine. */
class TickProducer
{
  public:
    virtual ~TickProducer() = default;

    /** True when the producer has no further work. */
    virtual bool done() const = 0;

    /** Cycle of the producer's next action (its local clock). */
    virtual Cycle nextCycle() const = 0;

    /** Perform the next action (may submit transactions). */
    virtual void tick() = 0;
};

/**
 * Discrete-event loop over N producers and one MemoryService.
 *
 * run() repeatedly ticks the live producer with the smallest
 * nextCycle() (registration order breaks ties), polls the service at
 * every epoch boundary, fires the epoch hook, and finishes with a
 * drainAll(). Fully serial: byte-determinism at any --threads value
 * is structural, not a property to re-verify per scenario.
 */
class TickEngine
{
  public:
    explicit TickEngine(MemoryService &mem) : mem_(mem) {}

    /** Register a producer (not owned; must outlive run()). */
    void add(TickProducer *producer);

    /**
     * Fire `hook(epoch_end_cycle)` every `epoch_cycles`, after the
     * service has been polled to the boundary - the thermal loop's
     * sampling point. Must be set before run(); 0 disables.
     */
    void setEpoch(Cycle epoch_cycles, std::function<void(Cycle)> hook);

    /**
     * Run until every producer is done, then drain the service.
     * When an epoch hook is set, one final boundary fires after the
     * drain so the tail activity is never lost.
     * @return The quiescent cycle.
     */
    Cycle run();

    /** Current global time (last ticked producer's cycle). */
    Cycle now() const { return now_; }

    /** Epochs fired so far. */
    uint64_t epochsFired() const { return epochs_fired_; }

  private:
    MemoryService &mem_;
    std::vector<TickProducer *> producers_;
    Cycle now_ = 0;
    Cycle epoch_cycles_ = 0;
    Cycle next_epoch_ = 0;
    uint64_t epochs_fired_ = 0;
    std::function<void(Cycle)> epoch_hook_;
};

/** An InOrderCore stepped as a TickEngine producer. */
class CoreProducer : public TickProducer
{
  public:
    explicit CoreProducer(InOrderCore &core) : core_(core) {}

    bool done() const override { return core_.done(); }
    Cycle nextCycle() const override { return core_.nowCycles(); }
    void tick() override { core_.step(); }

  private:
    InOrderCore &core_;
};

/**
 * Callback-based read stream: submits one read every `gap` cycles
 * over a strided address pattern and observes completions through
 * MemoryService::onComplete - the non-blocking consumer pattern the
 * equivalence tests compare against the blocking shim.
 */
class CallbackReadSource : public TickProducer
{
  public:
    CallbackReadSource(MemoryService &mem, uint64_t base_addr,
                       uint64_t stride, uint64_t count, Cycle gap,
                       Cycle start = 0)
        : mem_(mem), addr_(base_addr), stride_(stride), count_(count),
          gap_(gap), next_(start)
    {
    }

    bool done() const override { return issued_ >= count_; }
    Cycle nextCycle() const override { return next_; }
    void tick() override;

    /** Completions observed so far (callbacks fired). */
    uint64_t completed() const { return completed_; }

    /** Largest completion cycle observed. */
    Cycle lastCompletion() const { return last_completion_; }

    /** Sum of (completion - arrival) over observed completions. */
    Cycle totalLatency() const { return total_latency_; }

  private:
    MemoryService &mem_;
    uint64_t addr_;
    uint64_t stride_;
    uint64_t count_;
    Cycle gap_;
    Cycle next_;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
    Cycle last_completion_ = 0;
    Cycle total_latency_ = 0;
};

/**
 * Write-storm source for the thermal scenarios: hammers rows of one
 * bank with fire-and-forget writes (completions observed via
 * onComplete, so nothing blocks), with a duty cycle the thermal
 * throttle can modulate between epochs.
 */
class StormSource : public TickProducer
{
  public:
    /**
     * @param mem Target service.
     * @param base_addr First storm address (pick it to land on the
     *        bank under study; RowBankColumn keeps a row-sequential
     *        stream in one bank until the row wraps).
     * @param bytes Storm footprint (wraps around, row-sequential).
     * @param count Total writes to issue.
     * @param gap Cycles between writes at full rate.
     * @param start First issue cycle.
     */
    StormSource(MemoryService &mem, uint64_t base_addr, uint64_t bytes,
                uint64_t count, Cycle gap, Cycle start = 0)
        : mem_(mem), base_(base_addr), bytes_(bytes), count_(count),
          gap_(gap), next_(start)
    {
    }

    bool done() const override { return issued_ >= count_; }
    Cycle nextCycle() const override { return next_; }
    void tick() override;

    /**
     * Throttle multiplier on the issue gap (1 = full rate). The
     * thermal_throttling scenario raises it when a bank crosses the
     * temperature ceiling and restores it below the floor.
     */
    void setGapMultiplier(Cycle m) { gap_multiplier_ = m < 1 ? 1 : m; }

    uint64_t issuedWrites() const { return issued_; }
    uint64_t completed() const { return completed_; }
    Cycle lastCompletion() const { return last_completion_; }

  private:
    MemoryService &mem_;
    uint64_t base_;
    uint64_t bytes_;
    uint64_t count_;
    Cycle gap_;
    Cycle next_;
    Cycle gap_multiplier_ = 1;
    uint64_t offset_ = 0;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
    Cycle last_completion_ = 0;
};

} // namespace codic

#endif // CODIC_SIM_ENGINE_H
