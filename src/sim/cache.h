/**
 * @file
 * Set-associative write-back, write-allocate cache with LRU
 * replacement and CLFLUSH support, used for the L1/L2 hierarchy of
 * the trace-driven core (paper Tables 5 and 7).
 */

#ifndef CODIC_SIM_CACHE_H
#define CODIC_SIM_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace codic {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;     //!< A dirty victim was evicted.
    uint64_t victim_addr = 0;   //!< Line address of the dirty victim.
};

/** One level of cache. */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways Associativity.
     * @param line_bytes Line size (64 B throughout the paper).
     */
    Cache(uint64_t size_bytes, int ways, int line_bytes = 64);

    /**
     * Access a byte address; allocates on miss.
     * @param addr Byte address.
     * @param write True for stores (marks the line dirty).
     */
    CacheAccessResult access(uint64_t addr, bool write);

    /**
     * CLFLUSH: invalidate the line if present.
     * @return Present-and-dirty (a writeback is required).
     */
    bool flushLine(uint64_t addr);

    /** Invalidate a whole address range (hardware deallocation). */
    void invalidateRange(uint64_t addr, uint64_t bytes);

    /** Line size in bytes. */
    int lineBytes() const { return line_bytes_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;
    };

    size_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    int line_bytes_;
    int ways_;
    size_t sets_;
    std::vector<Line> lines_; // sets_ x ways_.
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace codic

#endif // CODIC_SIM_CACHE_H
