#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

void
TickEngine::add(TickProducer *producer)
{
    CODIC_ASSERT(producer != nullptr);
    producers_.push_back(producer);
}

void
TickEngine::setEpoch(Cycle epoch_cycles,
                     std::function<void(Cycle)> hook)
{
    CODIC_ASSERT(epoch_cycles >= 0);
    epoch_cycles_ = epoch_cycles;
    next_epoch_ = epoch_cycles;
    epoch_hook_ = std::move(hook);
}

Cycle
TickEngine::run()
{
    while (true) {
        // The globally earliest live producer; ties break by
        // registration index, so the interleave is a pure function
        // of the producer set.
        size_t pick = producers_.size();
        Cycle best = 0;
        for (size_t i = 0; i < producers_.size(); ++i) {
            TickProducer *p = producers_[i];
            if (p->done())
                continue;
            const Cycle c = p->nextCycle();
            if (pick == producers_.size() || c < best) {
                pick = i;
                best = c;
            }
        }
        if (pick == producers_.size())
            break;
        // Cross every epoch boundary at or before the next action:
        // poll the service to the boundary (services arrived work,
        // fires completion callbacks), then sample via the hook.
        while (epoch_cycles_ > 0 && next_epoch_ <= best) {
            mem_.poll(next_epoch_);
            if (epoch_hook_)
                epoch_hook_(next_epoch_);
            ++epochs_fired_;
            next_epoch_ += epoch_cycles_;
        }
        now_ = std::max(now_, best);
        producers_[pick]->tick();
    }
    const Cycle quiescent = mem_.drainAll();
    now_ = std::max(now_, quiescent);
    if (epoch_cycles_ > 0) {
        // Closing boundary: the partial tail epoch is sampled at the
        // quiescent cycle so no activity escapes the accounting.
        if (epoch_hook_)
            epoch_hook_(now_);
        ++epochs_fired_;
        next_epoch_ = now_ + epoch_cycles_;
    }
    return now_;
}

void
CallbackReadSource::tick()
{
    CODIC_ASSERT(!done());
    const Ticket t = mem_.submit(
        MemTransaction::makeRead(addr_, next_, /*origin=*/addr_));
    const Cycle arrival = next_;
    // The callback only records; re-entering the service from a
    // callback is forbidden (onComplete contract).
    mem_.onComplete(t, [this, arrival](Ticket, Cycle done) {
        ++completed_;
        last_completion_ = std::max(last_completion_, done);
        total_latency_ += done - arrival;
    });
    addr_ += stride_;
    ++issued_;
    next_ += gap_;
}

void
StormSource::tick()
{
    CODIC_ASSERT(!done());
    const Ticket t = mem_.submit(
        MemTransaction::makeWrite(base_ + offset_, next_,
                                  /*origin=*/base_));
    mem_.onComplete(t, [this](Ticket, Cycle done) {
        ++completed_;
        last_completion_ = std::max(last_completion_, done);
    });
    offset_ += 64;
    if (offset_ >= bytes_)
        offset_ = 0;
    ++issued_;
    next_ += gap_ * gap_multiplier_;
}

} // namespace codic
