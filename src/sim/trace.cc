#include "sim/trace.h"

namespace codic {

uint64_t
Workload::deallocBytes() const
{
    uint64_t bytes = 0;
    for (const auto &op : ops)
        if (op.type == OpType::DeallocRegion)
            bytes += op.count;
    return bytes;
}

uint64_t
Workload::instructionCount() const
{
    uint64_t n = 0;
    for (const auto &op : ops) {
        switch (op.type) {
          case OpType::Compute:
            n += op.count;
            break;
          case OpType::Load:
          case OpType::Flush:
            n += 1;
            break;
          case OpType::Store:
            n += 8; // 8 B stores covering a 64 B line.
            break;
          case OpType::DeallocRegion:
            n += 1; // The syscall/command itself.
            break;
        }
    }
    return n;
}

} // namespace codic
