#include "sim/cache.h"

#include "common/logging.h"

namespace codic {

namespace {

bool
isPowerOfTwo(uint64_t x)
{
    return x && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(uint64_t size_bytes, int ways, int line_bytes)
    : line_bytes_(line_bytes), ways_(ways)
{
    CODIC_ASSERT(ways >= 1 && line_bytes >= 8);
    CODIC_ASSERT(isPowerOfTwo(static_cast<uint64_t>(line_bytes)));
    const uint64_t lines = size_bytes / static_cast<uint64_t>(line_bytes);
    CODIC_ASSERT(lines >= static_cast<uint64_t>(ways));
    sets_ = static_cast<size_t>(lines / static_cast<uint64_t>(ways));
    CODIC_ASSERT(isPowerOfTwo(sets_));
    lines_.resize(sets_ * static_cast<size_t>(ways_));
}

size_t
Cache::setIndex(uint64_t addr) const
{
    return static_cast<size_t>(
        (addr / static_cast<uint64_t>(line_bytes_)) &
        (sets_ - 1));
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr / static_cast<uint64_t>(line_bytes_) / sets_;
}

CacheAccessResult
Cache::access(uint64_t addr, bool write)
{
    ++tick_;
    const size_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *entries = &lines_[set * static_cast<size_t>(ways_)];

    CacheAccessResult result;
    Line *victim = &entries[0];
    for (int w = 0; w < ways_; ++w) {
        Line &line = entries[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty = line.dirty || write;
            ++hits_;
            result.hit = true;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }
    ++misses_;
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victim_addr =
            (victim->tag * sets_ + set) *
            static_cast<uint64_t>(line_bytes_);
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = tick_;
    return result;
}

bool
Cache::flushLine(uint64_t addr)
{
    const size_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *entries = &lines_[set * static_cast<size_t>(ways_)];
    for (int w = 0; w < ways_; ++w) {
        Line &line = entries[w];
        if (line.valid && line.tag == tag) {
            const bool dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return dirty;
        }
    }
    return false;
}

void
Cache::invalidateRange(uint64_t addr, uint64_t bytes)
{
    const uint64_t line = static_cast<uint64_t>(line_bytes_);
    const uint64_t first = addr / line * line;
    for (uint64_t a = first; a < addr + bytes; a += line)
        flushLine(a);
}

} // namespace codic
