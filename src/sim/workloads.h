/**
 * @file
 * Synthetic workload generators standing in for the paper's Pin/Bochs
 * traces (Appendix A, Tables 8 and 9).
 *
 * Memory-allocation-intensive benchmarks (Table 8): mysql, memcached,
 * compiler, bootup, shell, malloc (stress-ng). Each is modeled as a
 * phased trace: compute, a working-set access mix, allocation of a
 * region that gets written, then deallocation of that region (which
 * the OS must zero - the operation under study).
 *
 * Non-allocation-intensive background benchmarks (for the multicore
 * mixes of Table 9): tpcc, tpch, stream, libquantum, xalancbmk,
 * bzip2, astar, lbm, condmat, pagerank, bfs - load/compute mixes with
 * no deallocation traffic.
 */

#ifndef CODIC_SIM_WORKLOADS_H
#define CODIC_SIM_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace codic {

/** Generator parameters for one phased workload. */
struct WorkloadParams
{
    std::string name;
    uint64_t footprint_bytes = 32ull << 20; //!< Working set.
    size_t phases = 400;
    uint64_t compute_per_phase = 4000;    //!< Instructions.
    int loads_per_phase = 120;
    int stores_per_phase = 40;
    uint64_t alloc_bytes_per_phase = 0;   //!< 0: not alloc-intensive.
    double sequential_fraction = 0.5;     //!< Streaming vs random.
    uint64_t seed = 1;
};

/** Generate a workload trace from parameters. */
Workload generateWorkload(const WorkloadParams &params);

/** Parameters of a named benchmark (Table 8 + background set). */
WorkloadParams benchmarkParams(const std::string &name, uint64_t seed);

/** The six allocation-intensive benchmarks of Table 8. */
std::vector<std::string> allocationIntensiveBenchmarks();

/** The background (non-allocation-intensive) benchmark pool. */
std::vector<std::string> backgroundBenchmarks();

/**
 * A 4-core mix: two allocation-intensive plus two background traces
 * (paper Table 9 methodology).
 */
struct WorkloadMix
{
    std::string name;
    std::vector<Workload> traces; //!< One per core (4 entries).
};

/** The five representative mixes of Table 9. */
std::vector<WorkloadMix> representativeMixes(uint64_t seed);

/** N random mixes (the paper's 50-mix average). */
std::vector<WorkloadMix> randomMixes(size_t count, uint64_t seed);

} // namespace codic

#endif // CODIC_SIM_WORKLOADS_H
