#include "sim/core.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mem/address_map.h"

namespace codic {

const char *
deallocModeName(DeallocMode m)
{
    switch (m) {
      case DeallocMode::SoftwareZero: return "software-zero";
      case DeallocMode::CodicDet: return "CODIC";
      case DeallocMode::RowClone: return "RowClone";
      case DeallocMode::LisaClone: return "LISA-clone";
    }
    panic("unknown dealloc mode");
}

InOrderCore::InOrderCore(MemoryService &mem, const CoreConfig &config,
                         uint64_t addr_base)
    : controller_(mem), config_(config), addr_base_(addr_base),
      l1_(config.l1_bytes, config.l1_ways),
      l2_(config.l2_bytes, config.l2_ways),
      cpu_cycle_ns_(1.0 / config.cpu_ghz),
      dram_tck_ns_(mem.dramConfig().tck_ns)
{
}

void
InOrderCore::bind(const Workload *workload, double start_ns)
{
    workload_ = workload;
    cursor_ = 0;
    now_ns_ = start_ns;
    stats_ = {};
}

bool
InOrderCore::done() const
{
    return !workload_ || cursor_ >= workload_->ops.size();
}

Cycle
InOrderCore::nowCycles() const
{
    return static_cast<Cycle>(std::ceil(now_ns_ / dram_tck_ns_));
}

void
InOrderCore::advanceTo(Cycle dram_cycle)
{
    now_ns_ = std::max(now_ns_,
                       static_cast<double>(dram_cycle) * dram_tck_ns_);
}

void
InOrderCore::cpuCycles(double n)
{
    now_ns_ += n * cpu_cycle_ns_;
}

void
InOrderCore::submitWriteback(uint64_t victim_addr)
{
    // Fire-and-forget: the core never waits on a writeback's burst,
    // only on write-queue acceptance (which submit models), so the
    // ticket is retired unqueried.
    controller_.retire(controller_.submit(MemTransaction::makeWrite(
        victim_addr, nowCycles(), addr_base_)));
}

void
InOrderCore::writebackThroughL2(uint64_t victim_addr)
{
    const auto wb = l2_.access(victim_addr, true);
    if (wb.writeback)
        submitWriteback(wb.victim_addr);
}

void
InOrderCore::doLoad(uint64_t addr)
{
    stats_.instructions += 1;
    ++stats_.loads;
    cpuCycles(config_.l1_hit_cycles);
    const auto r1 = l1_.access(addr, false);
    if (r1.hit)
        return;
    if (r1.writeback)
        writebackThroughL2(r1.victim_addr);
    cpuCycles(config_.l2_hit_cycles);
    const auto r2 = l2_.access(addr, false);
    if (r2.hit)
        return;
    if (r2.writeback)
        submitWriteback(r2.victim_addr);
    // The load blocks the in-order core: submit and resolve.
    const Ticket t = controller_.submit(
        MemTransaction::makeRead(addr, nowCycles(), addr_base_));
    advanceTo(controller_.completionOf(t));
}

void
InOrderCore::doStore(uint64_t addr)
{
    stats_.instructions += 8; // 8 B stores over a 64 B line.
    ++stats_.stores;
    cpuCycles(8);
    const auto r1 = l1_.access(addr, true);
    if (r1.hit)
        return;
    if (r1.writeback)
        writebackThroughL2(r1.victim_addr);
    cpuCycles(config_.l2_hit_cycles);
    const auto r2 = l2_.access(addr, true);
    if (r2.hit)
        return;
    if (r2.writeback)
        submitWriteback(r2.victim_addr);
    // Write-allocate: fetch the line (read-for-ownership).
    const Ticket t = controller_.submit(
        MemTransaction::makeRead(addr, nowCycles(), addr_base_));
    advanceTo(controller_.completionOf(t));
}

void
InOrderCore::doFlush(uint64_t addr)
{
    stats_.instructions += 1;
    cpuCycles(2);
    bool dirty = l1_.flushLine(addr);
    dirty = l2_.flushLine(addr) || dirty;
    if (dirty) {
        // Write-queue back-pressure stalls the flush when full: the
        // core advances to the acceptance cycle, not the burst end.
        const Ticket t = controller_.submit(MemTransaction::makeWrite(
            addr, nowCycles(), addr_base_));
        advanceTo(controller_.acceptedAt(t));
        controller_.retire(t);
    }
}

void
InOrderCore::doDealloc(uint64_t addr, uint64_t bytes)
{
    stats_.instructions += 1;
    const int64_t row_bytes = controller_.map().rowBytes();
    if (config_.dealloc == DeallocMode::SoftwareZero) {
        // Inline zeroing loop: one store per line.
        for (uint64_t a = addr; a < addr + bytes; a += 64) {
            doStore(a);
            ++stats_.dealloc_lines_zeroed;
        }
        return;
    }
    RowOpMechanism mech;
    switch (config_.dealloc) {
      case DeallocMode::CodicDet:
        mech = RowOpMechanism::CodicDet;
        break;
      case DeallocMode::RowClone:
        mech = RowOpMechanism::RowClone;
        break;
      case DeallocMode::LisaClone:
        mech = RowOpMechanism::LisaClone;
        break;
      default:
        panic("unreachable dealloc mode");
    }
    // One in-DRAM row operation per row; stale cached copies of the
    // region are invalidated. The operation proceeds in DRAM without
    // blocking the core: the completion cycle is discarded (the
    // resolve only forces the command onto the channel at its
    // arrival cycle, exactly like the pre-transaction controller).
    for (uint64_t a = addr; a < addr + bytes;
         a += static_cast<uint64_t>(row_bytes)) {
        cpuCycles(config_.dealloc_cmd_cycles);
        l1_.invalidateRange(a, static_cast<uint64_t>(row_bytes));
        l2_.invalidateRange(a, static_cast<uint64_t>(row_bytes));
        controller_.completionOf(controller_.submit(
            MemTransaction::makeRowOp(a, nowCycles(), mech, 0,
                                      addr_base_)));
        ++stats_.dealloc_rows;
    }
}

void
InOrderCore::step()
{
    CODIC_ASSERT(!done());
    const TraceOp &op = workload_->ops[cursor_++];
    switch (op.type) {
      case OpType::Compute:
        stats_.instructions += op.count;
        cpuCycles(static_cast<double>(op.count));
        break;
      case OpType::Load:
        doLoad(addr_base_ + op.addr);
        break;
      case OpType::Store:
        doStore(addr_base_ + op.addr);
        break;
      case OpType::Flush:
        doFlush(addr_base_ + op.addr);
        break;
      case OpType::DeallocRegion:
        doDealloc(addr_base_ + op.addr, op.count);
        break;
    }
}

double
InOrderCore::run()
{
    while (!done())
        step();
    return now_ns_;
}

} // namespace codic
