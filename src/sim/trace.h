/**
 * @file
 * Trace format for the trace-driven CPU model (paper Appendix A uses
 * Pin user-level traces and Bochs full-system traces; this repository
 * generates statistically equivalent synthetic traces with the
 * workload generators in sim/workloads.h).
 */

#ifndef CODIC_SIM_TRACE_H
#define CODIC_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace codic {

/** Kinds of trace operations. */
enum class OpType : uint8_t
{
    Compute,       //!< `count` non-memory instructions.
    Load,          //!< 64 B line read at `addr`.
    Store,         //!< 64 B line write at `addr` (8 store uops).
    Flush,         //!< CLFLUSH of the line at `addr` (ordered).
    DeallocRegion, //!< OS frees [addr, addr + count) - must be zeroed.
};

/** One trace operation. */
struct TraceOp
{
    OpType type = OpType::Compute;
    uint64_t addr = 0;
    uint64_t count = 0; //!< Instructions (Compute) or bytes (Dealloc).
};

/** A full single-threaded trace plus identification. */
struct Workload
{
    std::string name;
    std::vector<TraceOp> ops;

    /** Total bytes deallocated by the trace. */
    uint64_t deallocBytes() const;

    /** Total instruction count (compute + memory uops). */
    uint64_t instructionCount() const;
};

} // namespace codic

#endif // CODIC_SIM_TRACE_H
