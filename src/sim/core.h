/**
 * @file
 * Trace-driven in-order core with an L1/L2 write-back hierarchy over
 * the FR-FCFS memory controller (paper Tables 5 and 7: in-order
 * cores, 64 KB L1, 512 KB L2 per core, 64 B lines).
 *
 * The core executes TraceOps: blocking loads/stores through the
 * caches (write-allocate, so store misses fetch the line first),
 * CLFLUSH with write-queue back-pressure, and region deallocation via
 * either inline software zeroing or one in-DRAM row operation per row
 * (CODIC-det / RowClone / LISA-clone).
 *
 * The core is a transaction-API consumer (mem/service.h): loads and
 * stores submit a read transaction and block on completionOf;
 * writebacks are fire-and-forget submits (retired unqueried);
 * CLFLUSH blocks on acceptedAt (write-queue back-pressure); dealloc
 * row ops resolve without advancing core time. Every transaction is
 * tagged with the core's region base as its origin.
 */

#ifndef CODIC_SIM_CORE_H
#define CODIC_SIM_CORE_H

#include <cstdint>

#include "mem/service.h"
#include "sim/cache.h"
#include "sim/trace.h"

namespace codic {

/** How DeallocRegion trace ops are executed. */
enum class DeallocMode
{
    SoftwareZero, //!< Inline store loop (the baseline of Appendix A).
    CodicDet,     //!< One CODIC-det command per row.
    RowClone,     //!< RowClone FPM copy of a zero row.
    LisaClone,    //!< LISA-clone copy of a zero row.
};

/** Display name. */
const char *deallocModeName(DeallocMode m);

/** Core configuration (paper Table 7). */
struct CoreConfig
{
    double cpu_ghz = 3.2;       //!< Core clock.
    uint64_t l1_bytes = 65536;  //!< 64 KB L1.
    int l1_ways = 4;
    uint64_t l2_bytes = 524288; //!< 512 KB L2 per core.
    int l2_ways = 8;
    int l1_hit_cycles = 1;      //!< CPU cycles.
    int l2_hit_cycles = 8;      //!< CPU cycles.
    int dealloc_cmd_cycles = 20;//!< CPU cycles to issue one row op.
    DeallocMode dealloc = DeallocMode::SoftwareZero;
};

/** Per-core execution statistics. */
struct CoreStats
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t dealloc_rows = 0;
    uint64_t dealloc_lines_zeroed = 0;
};

/** One in-order core bound to a trace. */
class InOrderCore
{
  public:
    /**
     * @param mem Shared memory service: a single MemoryController or
     *        a multi-channel DramSystem (trace addresses then
     *        interleave across channels per the system's MapScheme).
     * @param config Core parameters.
     * @param addr_base Physical base offset for this core's trace
     *        addresses (gives each core a private region).
     */
    InOrderCore(MemoryService &mem, const CoreConfig &config,
                uint64_t addr_base = 0);

    /** Attach a trace; resets time and statistics. */
    void bind(const Workload *workload, double start_ns = 0.0);

    /** True when the trace is exhausted. */
    bool done() const;

    /** Local time (ns). */
    double timeNs() const { return now_ns_; }

    /** Local time in DRAM cycles (the TickEngine ordering key). */
    Cycle nowCycles() const;

    /** Execute the next trace op. */
    void step();

    /** Run the whole bound trace to completion; returns end time. */
    double run();

    const CoreStats &stats() const { return stats_; }

  private:
    void advanceTo(Cycle dram_cycle);
    void cpuCycles(double n);
    void doLoad(uint64_t addr);
    void doStore(uint64_t addr);
    void doFlush(uint64_t addr);
    void doDealloc(uint64_t addr, uint64_t bytes);
    /** Submit a fire-and-forget writeback transaction. */
    void submitWriteback(uint64_t victim_addr);
    /** Handle a dirty L1 victim through L2 (and memory if needed). */
    void writebackThroughL2(uint64_t victim_addr);

    MemoryService &controller_;
    CoreConfig config_;
    uint64_t addr_base_;
    Cache l1_;
    Cache l2_;
    const Workload *workload_ = nullptr;
    size_t cursor_ = 0;
    double now_ns_ = 0.0;
    double cpu_cycle_ns_;
    double dram_tck_ns_;
    CoreStats stats_;
};

} // namespace codic

#endif // CODIC_SIM_CORE_H
