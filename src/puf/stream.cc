#include "puf/stream.h"

#include "common/logging.h"
#include "common/rng.h"

namespace codic {

std::vector<uint8_t>
buildResponseBitStream(const DramPuf &puf,
                       const std::vector<const SimulatedChip *> &chips,
                       size_t min_bits, uint64_t seed)
{
    CODIC_ASSERT(!chips.empty());
    Rng rng(seed);
    std::vector<uint8_t> bits;
    bits.reserve(min_bits + 1024);

    size_t guard = 0;
    while (bits.size() < min_bits) {
        // A fresh challenge: random chip + random segment.
        const SimulatedChip *chip =
            chips[static_cast<size_t>(rng.below(chips.size()))];
        Challenge ch;
        ch.segment_id = rng.below(chip->segments());
        QueryEnv env{30.0, false, rng.next64()};
        const Response r = puf.evaluateFiltered(*chip, ch, env);
        // Responses are sorted by construction, so high address bits
        // carry ordering structure; the low byte of each address is
        // i.i.d.-uniform (cell spacing vastly exceeds 256) and is the
        // raw material for the stream.
        for (uint32_t cell : r.cells) {
            for (int b = 0; b < 8; ++b)
                bits.push_back(static_cast<uint8_t>((cell >> b) & 1));
        }
        if (++guard > min_bits + 1000000)
            fatal("response stream generation not converging");
    }
    bits.resize(min_bits);
    return bits;
}

} // namespace codic
