#include "puf/latency_puf.h"

#include <algorithm>
#include <cmath>

namespace codic {

DramLatencyPuf::DramLatencyPuf(const LatencyPufParams &params)
    : params_(params)
{
}

double
DramLatencyPuf::failureProbability(const LatencyWeakCell &cell,
                                   double temperature_c) const
{
    const double dt = temperature_c - 30.0;
    const double theta = params_.theta_30c + params_.theta_per_c * dt;
    // The cell's effective strength drifts with temperature by a
    // per-cell amount, reshuffling which cells sit near threshold.
    const double strength =
        cell.strength +
        cell.temp_shift * params_.temp_shift_sigma * (dt / 55.0);
    const double z = (theta - strength) / params_.width;
    return 1.0 / (1.0 + std::exp(-z));
}

Response
DramLatencyPuf::evaluate(const SimulatedChip &chip,
                         const Challenge &challenge,
                         const QueryEnv &env) const
{
    Rng noise = chip.domainRng(0x1A7, env.nonce ^ 0x5c4d);
    Response r;
    for (const auto &cell : chip.latencyWeakCells(
             challenge.segment_id, challenge.segment_bits)) {
        const double p = failureProbability(cell, env.temperature_c);
        if (noise.chance(p))
            r.cells.push_back(cell.index);
    }
    std::sort(r.cells.begin(), r.cells.end());
    return r;
}

Response
DramLatencyPuf::evaluateFiltered(const SimulatedChip &chip,
                                 const Challenge &challenge,
                                 const QueryEnv &env) const
{
    Rng noise = chip.domainRng(0x1A7F, env.nonce ^ 0x77aa);
    Response r;
    for (const auto &cell : chip.latencyWeakCells(
             challenge.segment_id, challenge.segment_bits)) {
        const double p = failureProbability(cell, env.temperature_c);
        // Binomial(reads, p) failure count, via the normal
        // approximation with continuity correction (the filter only
        // cares about the > threshold tail; exact draws would cost
        // 100 RNG calls per cell on campaign-scale sweeps).
        const double n = static_cast<double>(params_.reads);
        const double mean = n * p;
        const double sd = std::sqrt(std::max(n * p * (1.0 - p), 1e-12));
        const int failures = static_cast<int>(
            std::llround(noise.gaussian(mean, sd)));
        if (failures > params_.filter_threshold)
            r.cells.push_back(cell.index);
    }
    std::sort(r.cells.begin(), r.cells.end());
    return r;
}

int
DramLatencyPuf::passesPerEvaluation(bool filtered) const
{
    return filtered ? params_.reads : 1;
}

} // namespace codic
