#include "puf/sig_puf.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace codic {

CodicSigPuf::CodicSigPuf(const SigPufParams &params) : params_(params)
{
}

Response
CodicSigPuf::evaluate(const SimulatedChip &chip,
                      const Challenge &challenge,
                      const QueryEnv &env) const
{
    const double dt = std::max(0.0, env.temperature_c - 30.0);
    const double dropout =
        params_.temp_dropout_at_55c * (dt / 55.0) +
        (env.aged ? params_.aging_dropout : 0.0);
    const double growth = params_.temp_growth_at_55c * (dt / 55.0);
    const double marginal = chip.spec().ddr3l
                                ? params_.ddr3l_marginal_fraction
                                : params_.marginal_fraction;

    // Per-query noise stream (thermal noise on marginal cells).
    Rng noise = chip.domainRng(0x51F, env.nonce ^ 0x9e37);

    Response r;
    for (const auto &cell :
         chip.sigCells(challenge.segment_id, challenge.segment_bits)) {
        // Deterministic per-cell temperature dropout: the same cells
        // disappear at the same temperature on every query.
        if (cell.temp_u < dropout)
            continue;
        // Marginal cells flicker with per-query noise.
        if (cell.stability < marginal && noise.chance(0.5))
            continue;
        r.cells.push_back(cell.index);
    }
    // Deterministic per-cell appearance of extra cells at temperature.
    if (growth > 0.0) {
        for (const auto &cell : chip.sigExtraCells(
                 challenge.segment_id, challenge.segment_bits)) {
            if (cell.temp_u < growth * 12.5)
                r.cells.push_back(cell.index);
        }
    }
    std::sort(r.cells.begin(), r.cells.end());
    r.cells.erase(std::unique(r.cells.begin(), r.cells.end()),
                  r.cells.end());
    return r;
}

Response
CodicSigPuf::evaluateFiltered(const SimulatedChip &chip,
                              const Challenge &challenge,
                              const QueryEnv &env) const
{
    // Conservative filter (Section 6.1.1): evaluate the challenge
    // filter_challenges times and keep cells appearing in a majority.
    std::map<uint32_t, int> votes;
    for (int i = 0; i < params_.filter_challenges; ++i) {
        QueryEnv e = env;
        e.nonce = env.nonce * 1000003ULL + static_cast<uint64_t>(i) + 1;
        for (uint32_t c : evaluate(chip, challenge, e).cells)
            ++votes[c];
    }
    Response r;
    for (const auto &[cell, count] : votes)
        if (count * 2 > params_.filter_challenges)
            r.cells.push_back(cell);
    return r;
}

int
CodicSigPuf::passesPerEvaluation(bool filtered) const
{
    return filtered ? params_.filter_challenges : 1;
}

} // namespace codic
