/**
 * @file
 * Random-stream construction from CODIC-sig responses (paper Section
 * 6.1.3 / Appendix B): the addresses of the flip cells form the raw
 * material; responses to many different challenges are concatenated
 * into a bit stream and whitened with a Von Neumann extractor before
 * the NIST SP 800-22 suite runs on it.
 */

#ifndef CODIC_PUF_STREAM_H
#define CODIC_PUF_STREAM_H

#include <cstdint>
#include <vector>

#include "puf/chip_model.h"
#include "puf/puf.h"

namespace codic {

/**
 * Build a raw bit stream by concatenating the within-segment
 * addresses of flip cells from responses to distinct challenges
 * across the population (LSB-first, 16 bits per address).
 *
 * @param puf PUF to query (CODIC-sig in the paper).
 * @param chips Population to draw challenges from.
 * @param min_bits Stop once at least this many raw bits are gathered.
 * @param seed Challenge-selection seed.
 */
std::vector<uint8_t>
buildResponseBitStream(const DramPuf &puf,
                       const std::vector<const SimulatedChip *> &chips,
                       size_t min_bits, uint64_t seed);

} // namespace codic

#endif // CODIC_PUF_STREAM_H
