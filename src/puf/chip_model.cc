#include "puf/chip_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace codic {

namespace {

/** Stable 64-bit mix of several keys (SplitMix64 chaining). */
uint64_t
mixKeys(uint64_t a, uint64_t b, uint64_t c = 0)
{
    SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                  (c * 0xbf58476d1ce4e5b9ULL));
    sm.next();
    return sm.next();
}

/** Population count with sub-Poisson jitter around fraction * bits. */
size_t
populationCount(Rng &rng, double fraction, int bits)
{
    const double lambda = fraction * static_cast<double>(bits);
    const double jitter = rng.gaussian(0.0, std::sqrt(std::max(
                                                lambda, 1.0)));
    const double k = std::max(0.0, lambda + jitter);
    return static_cast<size_t>(std::llround(k));
}

/** Draw `count` distinct sorted bit positions in [0, bits). */
std::vector<uint32_t>
drawPositions(Rng &rng, size_t count, int bits)
{
    std::vector<uint32_t> pos;
    pos.reserve(count);
    for (size_t i = 0; i < count; ++i)
        pos.push_back(static_cast<uint32_t>(
            rng.below(static_cast<uint64_t>(bits))));
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    return pos;
}

// Domain tags for deterministic per-chip streams.
constexpr uint64_t kDomainParams = 1;
constexpr uint64_t kDomainSig = 2;
constexpr uint64_t kDomainSigExtra = 3;
constexpr uint64_t kDomainLatency = 4;
constexpr uint64_t kDomainPrelatChip = 5;
constexpr uint64_t kDomainPrelatSeg = 6;

} // namespace

SimulatedChip::SimulatedChip(const ChipSpec &spec) : spec_(spec)
{
    Rng rng = domainRng(kDomainParams);
    // Flip-cell fraction: log-uniform across the paper's observed
    // 0.01-0.22 % band (Section 6.1).
    const double lo = std::log(1.0e-4);
    const double hi = std::log(2.2e-3);
    sig_flip_fraction_ = std::exp(rng.uniform(lo, hi));
    // 48 h methodology coverage: 34-99 % of cells (Section 6.1).
    coverage_ = rng.uniform(0.34, 0.99);
    // tRCD-weak population (DRAM Latency PUF substrate).
    latency_weak_fraction_ = rng.uniform(0.004, 0.012);
    // tRP-weak column population (PreLatPUF substrate).
    prelat_col_fraction_ = rng.uniform(0.0012, 0.0032);
}

Rng
SimulatedChip::domainRng(uint64_t domain, uint64_t salt) const
{
    return Rng(mixKeys(spec_.seed, domain, salt));
}

uint64_t
SimulatedChip::segments() const
{
    // A chip contributes 1/8 of each rank-level 8 KB row; segments
    // are whole 8 KB rank rows, capacity_gbit * 8 chips per rank.
    const double chip_bytes = spec_.capacity_gbit * (1 << 30) / 8.0;
    return static_cast<uint64_t>(chip_bytes * 8.0 / 8192.0);
}

int
SimulatedChip::segmentBank(uint64_t segment_id) const
{
    return static_cast<int>(segment_id % 8);
}

std::vector<SigCell>
SimulatedChip::sigCells(uint64_t segment_id, int segment_bits) const
{
    Rng rng = domainRng(kDomainSig, segment_id);
    const size_t count =
        populationCount(rng, sig_flip_fraction_, segment_bits);
    const auto positions = drawPositions(rng, count, segment_bits);
    std::vector<SigCell> cells;
    cells.reserve(positions.size());
    for (uint32_t p : positions)
        cells.push_back({p, rng.uniform(), rng.uniform()});
    return cells;
}

std::vector<SigCell>
SimulatedChip::sigExtraCells(uint64_t segment_id, int segment_bits) const
{
    Rng rng = domainRng(kDomainSigExtra, segment_id);
    const size_t count = populationCount(
        rng, sig_flip_fraction_ * 0.08, segment_bits);
    const auto positions = drawPositions(rng, count, segment_bits);
    std::vector<SigCell> cells;
    cells.reserve(positions.size());
    for (uint32_t p : positions)
        cells.push_back({p, rng.uniform(), rng.uniform()});
    return cells;
}

std::vector<LatencyWeakCell>
SimulatedChip::latencyWeakCells(uint64_t segment_id,
                                int segment_bits) const
{
    Rng rng = domainRng(kDomainLatency, segment_id);
    const size_t count =
        populationCount(rng, latency_weak_fraction_, segment_bits);
    const auto positions = drawPositions(rng, count, segment_bits);
    std::vector<LatencyWeakCell> cells;
    cells.reserve(positions.size());
    for (uint32_t p : positions)
        cells.push_back({p, rng.uniform(), rng.gaussian(0.0, 1.0)});
    return cells;
}

std::vector<PrelatColumn>
SimulatedChip::prelatChipColumns(int row_columns) const
{
    Rng rng = domainRng(kDomainPrelatChip);
    const size_t count =
        populationCount(rng, prelat_col_fraction_, row_columns);
    const auto positions = drawPositions(rng, count, row_columns);
    std::vector<PrelatColumn> cols;
    cols.reserve(positions.size());
    for (uint32_t p : positions)
        cols.push_back({p, rng.uniform()});
    return cols;
}

std::vector<PrelatColumn>
SimulatedChip::prelatColumns(uint64_t segment_id, int segment_bits) const
{
    // Chip-level weak columns express in most banks; each bank adds
    // its own smaller population, and each row a small local one.
    // This column-shared structure is what makes PreLatPUF responses
    // from different segments of the same chip overlap (poor
    // Inter-Jaccard, paper Fig. 5).
    const int bank = segmentBank(segment_id);
    const auto chip_cols = prelatChipColumns(segment_bits);
    std::vector<PrelatColumn> out;
    out.reserve(chip_cols.size() + 16);
    for (const auto &c : chip_cols) {
        const uint64_t h = mixKeys(spec_.seed, 0xBA0000 + bank, c.index);
        // ~85 % of chip-level weak columns express in a given bank.
        if ((h % 1000) < 850)
            out.push_back(c);
    }
    // Bank-local extras: ~20 % of the chip population size.
    Rng bank_rng = domainRng(kDomainPrelatSeg, 0xB000 + bank);
    const size_t bank_extra = chip_cols.size() / 5;
    for (uint32_t p :
         drawPositions(bank_rng, bank_extra, segment_bits))
        out.push_back({p, bank_rng.uniform()});
    // Row-local extras: ~10 %.
    Rng row_rng = domainRng(kDomainPrelatSeg, segment_id);
    const size_t row_extra = chip_cols.size() / 10;
    for (uint32_t p : drawPositions(row_rng, row_extra, segment_bits))
        out.push_back({p, row_rng.uniform()});

    std::sort(out.begin(), out.end(),
              [](const PrelatColumn &a, const PrelatColumn &b) {
                  return a.index < b.index;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const PrelatColumn &a, const PrelatColumn &b) {
                              return a.index == b.index;
                          }),
              out.end());
    return out;
}

std::vector<ChipSpec>
moduleChips(const std::string &name, Vendor vendor, int chips,
            double capacity_gbit, int freq_mts, bool ddr3l,
            uint64_t seed_base)
{
    std::vector<ChipSpec> out;
    out.reserve(static_cast<size_t>(chips));
    for (int i = 0; i < chips; ++i) {
        ChipSpec spec;
        spec.vendor = vendor;
        spec.capacity_gbit = capacity_gbit;
        spec.freq_mts = freq_mts;
        spec.ddr3l = ddr3l;
        spec.module = name;
        spec.seed = mixKeys(seed_base, 0xC419, static_cast<uint64_t>(i));
        out.push_back(spec);
    }
    return out;
}

std::vector<SimulatedChip>
buildPaperPopulation(uint64_t seed)
{
    struct ModuleRow
    {
        const char *name;
        Vendor vendor;
        int chips;
        double gbit;
        int mts;
        bool ddr3l;
    };
    // Paper Table 12: 15 modules, 136 chips.
    static const ModuleRow rows[] = {
        {"M1", Vendor::A, 8, 4, 1600, true},
        {"M2", Vendor::A, 8, 4, 1600, true},
        {"M3", Vendor::A, 8, 4, 1600, true},
        {"M4", Vendor::A, 8, 4, 1600, true},
        {"M5", Vendor::A, 8, 4, 1600, false},
        {"M6", Vendor::A, 8, 4, 1600, false},
        {"M7", Vendor::A, 8, 4, 1600, false},
        {"M8", Vendor::A, 8, 4, 1600, false},
        {"M9", Vendor::B, 16, 2, 1333, false},
        {"M10", Vendor::B, 16, 2, 1333, false},
        {"M11", Vendor::B, 8, 4, 1600, true},
        {"M12", Vendor::C, 8, 4, 1600, true},
        {"M13", Vendor::C, 8, 4, 1600, true},
        {"M14", Vendor::C, 8, 4, 1600, true},
        {"M15", Vendor::C, 8, 4, 1600, true},
    };
    std::vector<SimulatedChip> chips;
    uint64_t module_index = 0;
    for (const auto &row : rows) {
        const uint64_t module_seed = mixKeys(seed, 0x40D, module_index++);
        for (auto &spec :
             moduleChips(row.name, row.vendor, row.chips, row.gbit,
                         row.mts, row.ddr3l, module_seed))
            chips.emplace_back(spec);
    }
    CODIC_ASSERT(chips.size() == 136);
    return chips;
}

std::vector<const SimulatedChip *>
filterByVoltage(const std::vector<SimulatedChip> &chips, bool ddr3l)
{
    std::vector<const SimulatedChip *> out;
    for (const auto &c : chips)
        if (c.spec().ddr3l == ddr3l)
            out.push_back(&c);
    return out;
}

} // namespace codic
