#include "puf/response_time.h"

#include "common/logging.h"
#include "dram/channel.h"

namespace codic {

const char *
pufKindName(PufKind kind)
{
    switch (kind) {
      case PufKind::CodicSig: return "CODIC-sig PUF";
      case PufKind::CodicSigOpt: return "CODIC-sig-opt PUF";
      case PufKind::Prelat: return "PreLatPUF";
      case PufKind::Latency: return "DRAM Latency PUF";
    }
    panic("unknown PUF kind");
}

namespace {

/**
 * Native command-level time of one read pass over a segment: ACT,
 * sequential RD bursts, PRE; all through the JEDEC checker.
 */
double
readPassNs(DramChannel &channel, int64_t segment_bytes)
{
    const auto &cfg = channel.config();
    const int bursts = static_cast<int>(segment_bytes / cfg.burst_bytes);
    Address a;
    Command act{CommandType::Act, a, 0};
    Cycle t = channel.issueAtEarliest(act, channel.lastIssueCycle());
    Cycle done = t;
    for (int i = 0; i < bursts && i < cfg.columns; ++i) {
        Command rd{CommandType::Rd, a, 0};
        rd.addr.column = i;
        done = channel.issueAtEarliest(rd, t);
    }
    Command pre{CommandType::Pre, a, 0};
    done = std::max(done, channel.issueAtEarliest(pre, done));
    return cfg.cyclesToNs(done);
}

/** Native time of one CODIC-sig pass: CODIC command + read pass. */
double
sigPassNs(const DramConfig &cfg, int64_t segment_bytes, bool optimized)
{
    DramChannel channel(cfg);
    const auto variant = optimized ? variants::sigOpt() : variants::sig();
    const int id = channel.registerVariant(variant.schedule);
    Address a;
    Command codic{CommandType::Codic, a, id};
    channel.issueAtEarliest(codic, 0);
    return readPassNs(channel, segment_bytes);
}

/** Native time of one PreLatPUF pass: write pass + read pass. */
double
prelatPassNs(const DramConfig &cfg, int64_t segment_bytes)
{
    DramChannel channel(cfg);
    const int bursts = static_cast<int>(segment_bytes / cfg.burst_bytes);
    Address a;
    Command act{CommandType::Act, a, 0};
    Cycle t = channel.issueAtEarliest(act, 0);
    for (int i = 0; i < bursts && i < cfg.columns; ++i) {
        Command wr{CommandType::Wr, a, 0};
        wr.addr.column = i;
        channel.issueAtEarliest(wr, t);
    }
    Command pre{CommandType::Pre, a, 0};
    channel.issueAtEarliest(pre, channel.lastIssueCycle());
    return readPassNs(channel, segment_bytes);
}

/** Native time of N read passes (the DRAM Latency PUF). */
double
latencyPassesNs(const DramConfig &cfg, int64_t segment_bytes, int reads)
{
    DramChannel channel(cfg);
    double last = 0.0;
    for (int i = 0; i < reads; ++i)
        last = readPassNs(channel, segment_bytes);
    return last;
}

} // namespace

EvalTime
evaluationTime(PufKind kind, bool filtered, const DramConfig &config,
               const ResponseTimeParams &params)
{
    EvalTime out{0.0, 0.0};
    switch (kind) {
      case PufKind::CodicSig:
      case PufKind::CodicSigOpt: {
        const int evals = filtered ? params.filter_challenges : 1;
        out.softmc_ms = params.softmc_pass_ms * evals;
        out.native_ns =
            sigPassNs(config, params.segment_bytes,
                      kind == PufKind::CodicSigOpt) * evals;
        break;
      }
      case PufKind::Prelat: {
        const int evals = filtered ? params.filter_challenges : 1;
        out.softmc_ms =
            params.softmc_pass_ms * params.prelat_pass_cost * evals;
        out.native_ns =
            prelatPassNs(config, params.segment_bytes) * evals;
        break;
      }
      case PufKind::Latency: {
        // The filter is integral to the mechanism; an unfiltered
        // Latency PUF is not usable (paper Section 6.1.1).
        out.softmc_ms = params.softmc_pass_ms * params.latency_reads;
        out.native_ns = latencyPassesNs(config, params.segment_bytes,
                                        params.latency_reads);
        break;
      }
    }
    return out;
}

} // namespace codic
