/**
 * @file
 * PUF evaluation campaigns reproducing the paper's Section 6.1
 * methodology: Intra-/Inter-Jaccard distributions over 10,000 random
 * segment pairs (Fig. 5), temperature sweeps (Fig. 6), aging, and
 * the naive exact-match authentication rates.
 */

#ifndef CODIC_PUF_EXPERIMENTS_H
#define CODIC_PUF_EXPERIMENTS_H

#include <vector>

#include "common/run_options.h"
#include "common/stats.h"
#include "puf/chip_model.h"
#include "puf/puf.h"

namespace codic {

/** Campaign configuration (paper defaults). */
struct JaccardCampaignConfig
{
    /**
     * Shared seed/threads. Each pair draws from its own Rng::fork()
     * stream (derived from `run.seed` and the pair index), so the
     * result is bit-identical at any thread count, including the
     * auto-detected default (run.threads == 0).
     */
    RunOptions run = {.seed = 7};

    size_t pairs = 10000;      //!< Random pairs per distribution.
    int segment_bits = 65536;  //!< 8 KB segments.
    double temperature_c = 30.0;
    bool filtered = true;      //!< Use each PUF's production filter.
};

/** Result of one Intra/Inter campaign. */
struct JaccardCampaignResult
{
    std::vector<double> intra; //!< Same segment, two queries.
    std::vector<double> inter; //!< Different segments, same chip.

    RunningStats intraStats() const;
    RunningStats interStats() const;
};

/**
 * Run the Fig. 5 campaign for one PUF over a chip subset.
 *
 * Intra pairs: two evaluations of the same random segment (distinct
 * nonces). Inter pairs: evaluations of two distinct random segments
 * of the same chip (the uniqueness comparison that exposes
 * PreLatPUF's column-shared structure).
 */
JaccardCampaignResult
runJaccardCampaign(const DramPuf &puf,
                   const std::vector<const SimulatedChip *> &chips,
                   const JaccardCampaignConfig &config);

/**
 * Fig. 6 campaign: Intra-Jaccard between a 30 C reference response
 * and a response at 30 C + delta, over random segments.
 */
std::vector<double>
runTemperatureCampaign(const DramPuf &puf,
                       const std::vector<const SimulatedChip *> &chips,
                       double delta_c, size_t pairs,
                       const RunOptions &run);

/**
 * Aging campaign (Section 6.1.1): Intra-Jaccard between pre- and
 * post-accelerated-aging responses.
 */
std::vector<double>
runAgingCampaign(const DramPuf &puf,
                 const std::vector<const SimulatedChip *> &chips,
                 size_t pairs, const RunOptions &run);

/** Naive exact-match authentication rates (Section 6.1.1). */
struct AuthRates
{
    double false_rejection; //!< Same challenge, response mismatch.
    double false_acceptance;//!< Different challenge, response match.
};

/**
 * Evaluate the naive challenge-response authentication of Section
 * 6.1.1 (accept only exact response match, no filter).
 */
AuthRates
runAuthCampaign(const DramPuf &puf,
                const std::vector<const SimulatedChip *> &chips,
                size_t trials, const RunOptions &run);

/** Coverage statistics of the 48 h methodology over a population. */
struct CoverageStats
{
    double min_coverage = 1.0;
    double max_coverage = 0.0;
    double min_flip_fraction = 1.0;
    double max_flip_fraction = 0.0;
};

/** Gather Section 6.1 coverage/flip-fraction bands. */
CoverageStats
coverageStats(const std::vector<SimulatedChip> &chips);

} // namespace codic

#endif // CODIC_PUF_EXPERIMENTS_H
