/**
 * @file
 * The DRAM Latency PUF baseline (Kim et al., HPCA 2018 [80]; compared
 * against in paper Section 6.1).
 *
 * Mechanism: read the segment with a drastically reduced
 * tRCD = 2.5 ns; cells that cannot deliver enough charge in time fail
 * probabilistically. The production filter reads the segment 100
 * times and keeps only cells failing in more than 90 reads.
 *
 * Properties reproduced from the paper:
 *  - Intra-Jaccard distributed toward 1 but dispersed (noisy failure
 *    probabilities near the filter threshold);
 *  - excellent Inter-Jaccard (per-cell mechanism, independent across
 *    segments);
 *  - strong sensitivity to temperature (failure probabilities shift
 *    with T, reshuffling the filtered set; paper Fig. 6).
 */

#ifndef CODIC_PUF_LATENCY_PUF_H
#define CODIC_PUF_LATENCY_PUF_H

#include "puf/chip_model.h"
#include "puf/puf.h"

namespace codic {

/** Tuning constants of the DRAM Latency PUF model. */
struct LatencyPufParams
{
    int reads = 100;          //!< Reads per filtered evaluation.
    int filter_threshold = 90;//!< Keep cells failing > this many reads.
    double theta_30c = 0.35;  //!< Failure threshold at 30 C.
    double theta_per_c = 0.004; //!< Threshold shift per degree C.
    double width = 0.08;      //!< Logistic width of failure prob.
    double temp_shift_sigma = 1.2; //!< Per-cell strength drift scale.
};

/** The DRAM Latency PUF implementation. */
class DramLatencyPuf : public DramPuf
{
  public:
    explicit DramLatencyPuf(const LatencyPufParams &params = {});

    const char *name() const override { return "DRAM Latency PUF"; }

    /** Single unfiltered read pass (noisy). */
    Response evaluate(const SimulatedChip &chip,
                      const Challenge &challenge,
                      const QueryEnv &env) const override;

    /** The 100-read > 90 filter of the original proposal. */
    Response evaluateFiltered(const SimulatedChip &chip,
                              const Challenge &challenge,
                              const QueryEnv &env) const override;

    int passesPerEvaluation(bool filtered) const override;

    /** Failure probability of one weak cell at temperature T. */
    double failureProbability(const LatencyWeakCell &cell,
                              double temperature_c) const;

  private:
    LatencyPufParams params_;
};

} // namespace codic

#endif // CODIC_PUF_LATENCY_PUF_H
