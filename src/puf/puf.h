/**
 * @file
 * Core DRAM-PUF abstractions: challenges, responses, query
 * environment, the PUF interface, and the Jaccard-index metrics the
 * paper uses to quantify PUF quality (Section 6.1.1, citing [70]).
 *
 * A challenge identifies a memory segment (address + size, paper
 * Section 5.1); the response is the set of cell positions inside the
 * segment that express the PUF's failure/signature mechanism. Two
 * responses are compared with the Jaccard index of their sets.
 */

#ifndef CODIC_PUF_PUF_H
#define CODIC_PUF_PUF_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace codic {

class SimulatedChip;

/**
 * A PUF challenge: one memory segment of a chip.
 *
 * The paper uses 8 KB segments (64 Kib); segment_id enumerates
 * disjoint segments across the chip's banks and rows.
 */
struct Challenge
{
    uint64_t segment_id = 0;  //!< Which segment of the chip.
    int segment_bits = 65536; //!< Segment size in bits (8 KB default).
};

/** Environmental conditions and per-query entropy for an evaluation. */
struct QueryEnv
{
    double temperature_c = 30.0; //!< Die temperature.
    bool aged = false;           //!< After accelerated aging (§6.1.1).
    uint64_t nonce = 0;          //!< Per-query noise stream selector.
};

/**
 * A PUF response: sorted, deduplicated cell positions (bit indices
 * within the segment) that expressed the mechanism.
 */
struct Response
{
    std::vector<uint32_t> cells;

    size_t size() const { return cells.size(); }
    bool operator==(const Response &) const = default;
};

/**
 * Jaccard index |a n b| / |a u b| of two responses (1 if both empty:
 * two empty responses are identical).
 */
double jaccard(const Response &a, const Response &b);

/** Abstract DRAM PUF. */
class DramPuf
{
  public:
    virtual ~DramPuf() = default;

    /** PUF name for reports ("CODIC-sig PUF", ...). */
    virtual const char *name() const = 0;

    /** Evaluate a challenge against a chip under given conditions. */
    virtual Response evaluate(const SimulatedChip &chip,
                              const Challenge &challenge,
                              const QueryEnv &env) const = 0;

    /**
     * Evaluate with the PUF's production filtering mechanism (e.g.
     * majority over 5 challenges for CODIC-sig/PreLatPUF, the
     * 100-read >90 filter for the DRAM Latency PUF). The default
     * forwards to evaluate() for PUFs whose evaluate() is already
     * filtered.
     */
    virtual Response evaluateFiltered(const SimulatedChip &chip,
                                      const Challenge &challenge,
                                      const QueryEnv &env) const;

    /** Number of raw segment passes one evaluation costs (Table 4). */
    virtual int passesPerEvaluation(bool filtered) const = 0;
};

} // namespace codic

#endif // CODIC_PUF_PUF_H
