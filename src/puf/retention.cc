#include "puf/retention.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nist/special_functions.h"

namespace codic {

namespace {

/** Lognormal spread of per-cell retention (ln-space sigma). */
constexpr double kRetentionSigmaLn = 1.2;

/** Designed offset as a fraction of Vdd/2 (20 mV / 750 mV). */
constexpr double kBiasFrac = 0.0267;

/** Inverse standard-normal CDF by bisection (p in (0,1)). */
double
normalQuantile(double p)
{
    CODIC_ASSERT(p > 0.0 && p < 1.0);
    double lo = -10.0;
    double hi = 10.0;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (normalCdf(mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

double
RetentionExperimentResult::coverage() const
{
    if (sampled == 0)
        return 0.0;
    return static_cast<double>(conclusive) /
           static_cast<double>(sampled);
}

double
RetentionExperimentResult::flipFraction() const
{
    if (conclusive == 0)
        return 0.0;
    return static_cast<double>(flips_observed) /
           static_cast<double>(conclusive);
}

double
chipRetentionMedianHours(const SimulatedChip &chip)
{
    // Invert the chip's coverage: with a 48 h wait and the default
    // conclusiveness residual, cells with tau below
    // 48 / ln(1/residual) hours are conclusive. Coverage c then pins
    // the lognormal median. This keeps the statistical chip model
    // and the emulated methodology mutually consistent.
    const double tau_threshold = 48.0 / std::log(1.0 / 0.02);
    const double c =
        std::clamp(chip.methodologyCoverage(), 0.01, 0.995);
    return tau_threshold /
           std::exp(normalQuantile(c) * kRetentionSigmaLn);
}

RetentionExperimentResult
runRetentionExperiment(const SimulatedChip &chip,
                       const RetentionExperimentConfig &config)
{
    CODIC_ASSERT(config.sample_cells > 0);
    const double median = chipRetentionMedianHours(chip);
    const double accel = std::pow(
        config.acceleration_per_10c,
        (config.temperature_c - 30.0) / 10.0);
    const double t_eff = config.wait_hours * accel;

    // Per-cell offset spread pinned to the chip's flip fraction:
    // flip cells are those whose offset falls below zero, so
    // sigma = bias / z(1 - flip_fraction).
    const double flip = std::clamp(chip.sigFlipFraction(), 1e-5, 0.2);
    const double sigma_frac =
        kBiasFrac / normalQuantile(1.0 - flip);

    Rng rng = chip.domainRng(0x9E7E, config.segment_id);
    RetentionExperimentResult result;
    result.sampled = config.sample_cells;

    for (int i = 0; i < config.sample_cells; ++i) {
        const double tau =
            median * std::exp(rng.gaussian(0.0, kRetentionSigmaLn));
        // Residual deviation from Vdd/2, as a fraction of the full
        // Vdd/2 swing, after the refresh-free window.
        const double residual = std::exp(-t_eff / tau);
        const double off_frac = rng.gaussian(kBiasFrac, sigma_frac);

        // Scenario A: initialized to 0 (deviation -residual);
        // scenario B: initialized to 1 (deviation +residual). The
        // next activation amplifies sign(deviation + offset).
        const bool sensed_from_zero = (-residual + off_frac) > 0.0;
        const bool sensed_from_one = (residual + off_frac) > 0.0;
        if (sensed_from_zero == sensed_from_one) {
            ++result.conclusive;
            // Conclusive cells reading the minority direction (the
            // designed bias points to '1') are the flip cells.
            if (!sensed_from_zero)
                ++result.flips_observed;
        }
    }
    return result;
}

} // namespace codic
