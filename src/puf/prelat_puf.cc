#include "puf/prelat_puf.h"

#include <algorithm>
#include <map>

namespace codic {

PrelatPuf::PrelatPuf(const PrelatPufParams &params) : params_(params)
{
}

Response
PrelatPuf::evaluate(const SimulatedChip &chip, const Challenge &challenge,
                    const QueryEnv &env) const
{
    const double dt = std::max(0.0, env.temperature_c - 30.0);
    const double dropout = params_.temp_dropout_at_55c * (dt / 55.0) +
                           (env.aged ? 0.004 : 0.0);

    Rng noise = chip.domainRng(0x9E1, env.nonce ^ 0x1357);
    Response r;
    for (const auto &col : chip.prelatColumns(challenge.segment_id,
                                              challenge.segment_bits)) {
        // Deterministic tiny temperature perturbation.
        if (col.stability < dropout)
            continue;
        // Marginal columns flicker per query.
        if (col.stability < params_.marginal_fraction &&
            noise.chance(0.5))
            continue;
        r.cells.push_back(col.index);
    }
    std::sort(r.cells.begin(), r.cells.end());
    return r;
}

Response
PrelatPuf::evaluateFiltered(const SimulatedChip &chip,
                            const Challenge &challenge,
                            const QueryEnv &env) const
{
    std::map<uint32_t, int> votes;
    for (int i = 0; i < params_.filter_challenges; ++i) {
        QueryEnv e = env;
        e.nonce = env.nonce * 1000033ULL + static_cast<uint64_t>(i) + 1;
        for (uint32_t c : evaluate(chip, challenge, e).cells)
            ++votes[c];
    }
    Response r;
    for (const auto &[cell, count] : votes)
        if (count * 2 > params_.filter_challenges)
            r.cells.push_back(cell);
    return r;
}

int
PrelatPuf::passesPerEvaluation(bool filtered) const
{
    return filtered ? params_.filter_challenges : 1;
}

} // namespace codic
