#include "puf/experiments.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace codic {

RunningStats
JaccardCampaignResult::intraStats() const
{
    RunningStats s;
    for (double v : intra)
        s.add(v);
    return s;
}

RunningStats
JaccardCampaignResult::interStats() const
{
    RunningStats s;
    for (double v : inter)
        s.add(v);
    return s;
}

namespace {

/** Pick a random chip and segment. */
std::pair<const SimulatedChip *, uint64_t>
pickSegment(Rng &rng, const std::vector<const SimulatedChip *> &chips)
{
    CODIC_ASSERT(!chips.empty());
    const SimulatedChip *chip =
        chips[static_cast<size_t>(rng.below(chips.size()))];
    const uint64_t segment = rng.below(chip->segments());
    return {chip, segment};
}

Response
query(const DramPuf &puf, const SimulatedChip &chip, uint64_t segment,
      int bits, const QueryEnv &env, bool filtered)
{
    Challenge ch;
    ch.segment_id = segment;
    ch.segment_bits = bits;
    return filtered ? puf.evaluateFiltered(chip, ch, env)
                    : puf.evaluate(chip, ch, env);
}

} // namespace

JaccardCampaignResult
runJaccardCampaign(const DramPuf &puf,
                   const std::vector<const SimulatedChip *> &chips,
                   const JaccardCampaignConfig &config)
{
    // One Rng stream per pair, derived from (seed, index) before the
    // campaign starts: the result does not depend on which thread
    // evaluates which pair, so any thread count reproduces the
    // sequential campaign bit for bit.
    auto streams = forkStreams(config.run.seed, config.pairs);
    JaccardCampaignResult result;
    result.intra.resize(config.pairs);
    result.inter.resize(config.pairs);

    CampaignEngine engine(config.run.threads);
    engine.forEach(config.pairs, [&](size_t i) {
        Rng rng = streams[i];
        // Intra: same segment, two independent queries.
        auto [chip, segment] = pickSegment(rng, chips);
        QueryEnv env1{config.temperature_c, false, rng.next64()};
        QueryEnv env2{config.temperature_c, false, rng.next64()};
        const Response a = query(puf, *chip, segment,
                                 config.segment_bits, env1,
                                 config.filtered);
        const Response b = query(puf, *chip, segment,
                                 config.segment_bits, env2,
                                 config.filtered);
        result.intra[i] = jaccard(a, b);

        // Inter: two distinct segments of one chip.
        auto [chip2, seg_a] = pickSegment(rng, chips);
        uint64_t seg_b = rng.below(chip2->segments());
        while (seg_b == seg_a)
            seg_b = rng.below(chip2->segments());
        QueryEnv env3{config.temperature_c, false, rng.next64()};
        QueryEnv env4{config.temperature_c, false, rng.next64()};
        const Response c = query(puf, *chip2, seg_a,
                                 config.segment_bits, env3,
                                 config.filtered);
        const Response d = query(puf, *chip2, seg_b,
                                 config.segment_bits, env4,
                                 config.filtered);
        result.inter[i] = jaccard(c, d);
    });
    return result;
}

std::vector<double>
runTemperatureCampaign(const DramPuf &puf,
                       const std::vector<const SimulatedChip *> &chips,
                       double delta_c, size_t pairs,
                       const RunOptions &run)
{
    auto streams = forkStreams(run.seed, pairs);
    std::vector<double> out(pairs);
    CampaignEngine engine(run.threads);
    engine.forEach(pairs, [&](size_t i) {
        Rng rng = streams[i];
        auto [chip, segment] = pickSegment(rng, chips);
        QueryEnv ref{30.0, false, rng.next64()};
        QueryEnv hot{30.0 + delta_c, false, rng.next64()};
        const Response a =
            query(puf, *chip, segment, 65536, ref, true);
        const Response b =
            query(puf, *chip, segment, 65536, hot, true);
        out[i] = jaccard(a, b);
    });
    return out;
}

std::vector<double>
runAgingCampaign(const DramPuf &puf,
                 const std::vector<const SimulatedChip *> &chips,
                 size_t pairs, const RunOptions &run)
{
    auto streams = forkStreams(run.seed, pairs);
    std::vector<double> out(pairs);
    CampaignEngine engine(run.threads);
    engine.forEach(pairs, [&](size_t i) {
        Rng rng = streams[i];
        auto [chip, segment] = pickSegment(rng, chips);
        QueryEnv fresh{30.0, false, rng.next64()};
        QueryEnv aged{30.0, true, rng.next64()};
        const Response a =
            query(puf, *chip, segment, 65536, fresh, true);
        const Response b =
            query(puf, *chip, segment, 65536, aged, true);
        out[i] = jaccard(a, b);
    });
    return out;
}

AuthRates
runAuthCampaign(const DramPuf &puf,
                const std::vector<const SimulatedChip *> &chips,
                size_t trials, const RunOptions &run)
{
    auto streams = forkStreams(run.seed, trials);
    // Per-trial outcomes land in private slots; the counts are
    // order-independent sums, reduced after the campaign drains.
    std::vector<uint8_t> rejected(trials, 0);
    std::vector<uint8_t> accepted(trials, 0);
    CampaignEngine engine(run.threads);
    engine.forEach(trials, [&](size_t i) {
        Rng rng = streams[i];
        auto [chip, segment] = pickSegment(rng, chips);
        // Enrolled response vs. a later unfiltered query.
        QueryEnv enroll{30.0, false, rng.next64()};
        QueryEnv verify{30.0, false, rng.next64()};
        const Response a =
            query(puf, *chip, segment, 65536, enroll, false);
        const Response b =
            query(puf, *chip, segment, 65536, verify, false);
        rejected[i] = !(a == b);

        // Impostor: response from a different segment.
        uint64_t other = rng.below(chip->segments());
        while (other == segment)
            other = rng.below(chip->segments());
        QueryEnv imp{30.0, false, rng.next64()};
        const Response c =
            query(puf, *chip, other, 65536, imp, false);
        accepted[i] = a == c;
    });
    size_t false_rej = 0;
    size_t false_acc = 0;
    for (size_t i = 0; i < trials; ++i) {
        false_rej += rejected[i];
        false_acc += accepted[i];
    }
    const double n = static_cast<double>(trials);
    return {static_cast<double>(false_rej) / n,
            static_cast<double>(false_acc) / n};
}

CoverageStats
coverageStats(const std::vector<SimulatedChip> &chips)
{
    CoverageStats s;
    for (const auto &chip : chips) {
        s.min_coverage = std::min(s.min_coverage,
                                  chip.methodologyCoverage());
        s.max_coverage = std::max(s.max_coverage,
                                  chip.methodologyCoverage());
        s.min_flip_fraction =
            std::min(s.min_flip_fraction, chip.sigFlipFraction());
        s.max_flip_fraction =
            std::max(s.max_flip_fraction, chip.sigFlipFraction());
    }
    return s;
}

} // namespace codic
