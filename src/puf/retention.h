/**
 * @file
 * The paper's real-chip emulation methodology for CODIC-sig
 * (Section 6.1): since commodity chips cannot execute CODIC commands,
 * the authors disable refresh for 48 hours so cells leak toward the
 * precharge voltage (Vdd/2), then activate and read. A custom
 * two-scenario test decides, per cell, whether the methodology is
 * conclusive: the experiment is run once with all cells initialized
 * to 0 and once to 1; only cells whose final sensed value is the
 * same in both runs are known to have reached Vdd/2 (their value is
 * what a real CODIC-sig would generate). The paper obtains CODIC
 * values for 34-99 % of cells per chip this way.
 *
 * This module simulates that exact methodology: per-cell retention
 * time constants (lognormal, temperature-accelerated), exponential
 * decay toward Vdd/2 over the refresh-free window, sensing through
 * the same offset model the PUF uses, and the two-scenario
 * conclusiveness test.
 */

#ifndef CODIC_PUF_RETENTION_H
#define CODIC_PUF_RETENTION_H

#include <cstdint>

#include "puf/chip_model.h"

namespace codic {

/** Parameters of the refresh-disable emulation experiment. */
struct RetentionExperimentConfig
{
    double wait_hours = 48.0;     //!< Refresh-free window (paper: 48 h
                                  //!< at 30 C, 4 h at temperature).
    double temperature_c = 30.0;  //!< Ambient during the wait.
    int sample_cells = 20000;     //!< Cells sampled per segment.
    uint64_t segment_id = 0;      //!< Segment under test.

    /**
     * Residual charge (fraction of Vdd/2 deviation) below which the
     * sensed value is decided by process variation rather than the
     * stored value - the conclusiveness criterion.
     */
    double conclusive_residual = 0.02;

    /**
     * Temperature acceleration: decay speeds up by this factor for
     * every 10 C above 30 C (retention roughly halves per 10 C,
     * paper references [79, 97, 98, 115]).
     */
    double acceleration_per_10c = 2.0;
};

/** Outcome of the two-scenario test on one segment. */
struct RetentionExperimentResult
{
    int sampled = 0;          //!< Cells tested.
    int conclusive = 0;       //!< Same final value from both inits.
    int flips_observed = 0;   //!< Conclusive cells reading the
                              //!< minority (flip) direction.

    /** Fraction of cells the methodology covers (paper: 34-99 %). */
    double coverage() const;

    /** Flip fraction among conclusive cells (paper: 0.01-0.22 %). */
    double flipFraction() const;
};

/**
 * Run the two-scenario retention emulation on one chip segment.
 *
 * Per sampled cell, both initializations decay for the configured
 * window; each final voltage is sensed through the chip's per-cell
 * offset. The cell is conclusive if both scenarios sense the same
 * value; conclusive cells reading the minority direction are exactly
 * the CODIC-sig flip cells the PUF uses.
 */
RetentionExperimentResult
runRetentionExperiment(const SimulatedChip &chip,
                       const RetentionExperimentConfig &config = {});

/**
 * Median cell-retention time constant of a chip (hours at 30 C).
 * A per-chip device property; the spread across chips produces the
 * paper's wide 34-99 % coverage band.
 */
double chipRetentionMedianHours(const SimulatedChip &chip);

} // namespace codic

#endif // CODIC_PUF_RETENTION_H
