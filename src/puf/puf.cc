#include "puf/puf.h"

#include <algorithm>

namespace codic {

double
jaccard(const Response &a, const Response &b)
{
    if (a.cells.empty() && b.cells.empty())
        return 1.0;
    size_t inter = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.cells.size() && j < b.cells.size()) {
        if (a.cells[i] == b.cells[j]) {
            ++inter;
            ++i;
            ++j;
        } else if (a.cells[i] < b.cells[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    const size_t uni = a.cells.size() + b.cells.size() - inter;
    return static_cast<double>(inter) / static_cast<double>(uni);
}

Response
DramPuf::evaluateFiltered(const SimulatedChip &chip,
                          const Challenge &challenge,
                          const QueryEnv &env) const
{
    return evaluate(chip, challenge, env);
}

} // namespace codic
