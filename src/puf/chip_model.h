/**
 * @file
 * Synthetic DRAM chip population standing in for the paper's 136 real
 * DDR3 chips (Tables 3 and 12).
 *
 * Each SimulatedChip is a stable "device": all of its per-cell
 * properties are derived deterministically from the chip seed by
 * hashing, so repeated queries see the same silicon, exactly like
 * process variation in hardware. Cell populations are generated
 * lazily per segment (a 4 Gb chip is never materialized), which makes
 * campaign-scale experiments (10,000 Jaccard pairs over 136 chips)
 * instantaneous.
 *
 * Three failure/signature mechanisms are modeled, one per PUF:
 *  - sig flip cells: the sparse population of cells whose CODIC-sig
 *    value amplifies to the minority direction (0.01-0.22 % of cells,
 *    Section 6.1). Highly stable; nearly temperature-insensitive
 *    (common-mode tracking of the cell and the SA trip point).
 *  - tRCD weak cells: cells that fail under tRCD = 2.5 ns reads
 *    (DRAM Latency PUF). Probabilistic per read, strongly
 *    temperature-dependent.
 *  - tRP weak columns: sense-amplifier/bitline structures that fail
 *    under tRP = 2.5 ns (PreLatPUF). Stable and temperature-robust,
 *    but column-structured, so different segments of the same chip
 *    share them (the poor uniqueness the paper observes in Fig. 5).
 */

#ifndef CODIC_PUF_CHIP_MODEL_H
#define CODIC_PUF_CHIP_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "puf/puf.h"

namespace codic {

/** DRAM vendor, as anonymized in the paper (A, B, C). */
enum class Vendor : uint8_t { A, B, C };

/** Static description of one chip (one row of Table 12, per chip). */
struct ChipSpec
{
    Vendor vendor = Vendor::A;
    double capacity_gbit = 4.0;  //!< Per-chip density.
    int freq_mts = 1600;         //!< Transfer rate (MT/s).
    bool ddr3l = false;          //!< 1.35 V low-voltage part.
    std::string module;          //!< Module name ("M1".."M15").
    uint64_t seed = 0;           //!< Device identity.
};

/** Per-cell record of the sig flip-cell population. */
struct SigCell
{
    uint32_t index;       //!< Bit position within the segment.
    double stability;     //!< U(0,1); tiny values flicker per query.
    double temp_u;        //!< U(0,1); drives temperature dropout.
};

/** Per-cell record of the tRCD-weak population. */
struct LatencyWeakCell
{
    uint32_t index;    //!< Bit position within the segment.
    double strength;   //!< U(0,1); compared against theta(T).
    double temp_shift; //!< N(0, 1): strength drift with temperature,
                       //!< scaled by the PUF's temp_shift_sigma.
};

/** Per-column record of the tRP-weak population. */
struct PrelatColumn
{
    uint32_t index;    //!< Column position within the row.
    double stability;  //!< U(0,1); tiny values flicker per query.
};

/**
 * One simulated DRAM chip.
 *
 * All generator methods are const and deterministic in
 * (seed, segment): they re-derive the same populations every call.
 */
class SimulatedChip
{
  public:
    explicit SimulatedChip(const ChipSpec &spec);

    const ChipSpec &spec() const { return spec_; }

    /** Number of 8 KB segments this chip contributes to its rank. */
    uint64_t segments() const;

    /**
     * Fraction of cells whose CODIC-sig value is the minority
     * direction (per-chip, in the paper's 0.01-0.22 % band).
     */
    double sigFlipFraction() const { return sig_flip_fraction_; }

    /**
     * Fraction of cells for which the 48 h retention methodology of
     * Section 6.1 can establish the CODIC value (paper: 34-99 %).
     */
    double methodologyCoverage() const { return coverage_; }

    /** The sig flip-cell population of one segment. */
    std::vector<SigCell> sigCells(uint64_t segment_id,
                                  int segment_bits) const;

    /** Extra sig cells that appear only at elevated temperature. */
    std::vector<SigCell> sigExtraCells(uint64_t segment_id,
                                       int segment_bits) const;

    /** The tRCD-weak population of one segment. */
    std::vector<LatencyWeakCell> latencyWeakCells(uint64_t segment_id,
                                                  int segment_bits) const;

    /** Chip-level weak columns (shared structure across segments). */
    std::vector<PrelatColumn> prelatChipColumns(int row_columns) const;

    /** Bank index a segment belongs to (segments stripe over banks). */
    int segmentBank(uint64_t segment_id) const;

    /**
     * Per-(bank, segment) modulation of the weak-column set: which
     * chip-level columns express in this bank plus bank/row-local
     * extras. Returned as a full response-position list.
     */
    std::vector<PrelatColumn> prelatColumns(uint64_t segment_id,
                                            int segment_bits) const;

    /** Deterministic per-chip derived RNG stream for a named domain. */
    Rng domainRng(uint64_t domain, uint64_t salt = 0) const;

  private:
    ChipSpec spec_;
    double sig_flip_fraction_;
    double coverage_;
    double latency_weak_fraction_;
    double prelat_col_fraction_;
};

/** Build one module's chips. */
std::vector<ChipSpec> moduleChips(const std::string &name, Vendor vendor,
                                  int chips, double capacity_gbit,
                                  int freq_mts, bool ddr3l,
                                  uint64_t seed_base);

/**
 * The full 136-chip / 15-module population of paper Table 12.
 * @param seed Population seed (chip identities derive from it).
 */
std::vector<SimulatedChip> buildPaperPopulation(uint64_t seed = 2021);

/** Subset helper: chips at a given voltage class. */
std::vector<const SimulatedChip *>
filterByVoltage(const std::vector<SimulatedChip> &chips, bool ddr3l);

} // namespace codic

#endif // CODIC_PUF_CHIP_MODEL_H
