/**
 * @file
 * The CODIC-sig PUF (paper Sections 4.1.1 and 5.1).
 *
 * Mechanism: a CODIC-sig command drives every cell of the segment to
 * the precharge voltage; the following activation amplifies each cell
 * to a direction decided by process variation. Most cells amplify to
 * the majority direction; the sparse minority ("flip") cells form the
 * response.
 *
 * Properties reproduced from the paper:
 *  - responses are highly stable (99.7 % of challenges give the
 *    exact same response; a light 5-challenge majority filter makes
 *    them fully repeatable);
 *  - strong temperature resilience: the cell residue and the SA trip
 *    point drift together (common mode), so only a small fraction of
 *    the response changes even at a 55 C delta;
 *  - data independence: cells are precharged to Vdd/2 regardless of
 *    prior content.
 */

#ifndef CODIC_PUF_SIG_PUF_H
#define CODIC_PUF_SIG_PUF_H

#include "puf/chip_model.h"
#include "puf/puf.h"

namespace codic {

/** Tuning constants of the CODIC-sig response model. */
struct SigPufParams
{
    /**
     * Fraction of flip cells that are marginal (flicker per query).
     * Calibrated so ~0.3-0.6 % of challenges see a changed response
     * (paper: 99.72 % identical on the worst module; 0.64 % average
     * false-rejection rate for exact-match authentication).
     */
    double marginal_fraction = 0.0003;

    /** DDR3L parts are slightly more stable (paper Fig. 5). */
    double ddr3l_marginal_fraction = 0.00015;

    /** Fraction of the response that drops out per 55 C delta. */
    double temp_dropout_at_55c = 0.05;

    /** Extra-cell appearance scale per 55 C delta. */
    double temp_growth_at_55c = 0.04;

    /** Response perturbation after accelerated aging (tiny). */
    double aging_dropout = 0.01;

    /** Number of challenges in the conservative majority filter. */
    int filter_challenges = 5;
};

/** The CODIC-sig PUF implementation. */
class CodicSigPuf : public DramPuf
{
  public:
    explicit CodicSigPuf(const SigPufParams &params = {});

    const char *name() const override { return "CODIC-sig PUF"; }

    Response evaluate(const SimulatedChip &chip,
                      const Challenge &challenge,
                      const QueryEnv &env) const override;

    /** Majority vote over filter_challenges evaluations. */
    Response evaluateFiltered(const SimulatedChip &chip,
                              const Challenge &challenge,
                              const QueryEnv &env) const override;

    int passesPerEvaluation(bool filtered) const override;

  private:
    SigPufParams params_;
};

} // namespace codic

#endif // CODIC_PUF_SIG_PUF_H
