/**
 * @file
 * The PreLatPUF baseline (Talukder et al., IEEE Access 2019 [153];
 * compared against in paper Section 6.1).
 *
 * Mechanism: precharge with a drastically reduced tRP = 2.5 ns; the
 * bitlines of weak sense-amplifier/precharge structures do not reach
 * Vdd/2 in time and the following access fails.
 *
 * Properties reproduced from the paper:
 *  - very repeatable responses (Intra-Jaccard near 1) and the best
 *    temperature robustness (the mechanism lives in the SA/bitline
 *    structure, not in cell charge);
 *  - poor uniqueness (Inter-Jaccard dispersed and far from 0):
 *    because the failures are column-structured, different segments
 *    of the same chip share a large part of their response.
 */

#ifndef CODIC_PUF_PRELAT_PUF_H
#define CODIC_PUF_PRELAT_PUF_H

#include "puf/chip_model.h"
#include "puf/puf.h"

namespace codic {

/** Tuning constants of the PreLatPUF model. */
struct PrelatPufParams
{
    /** Fraction of weak columns that are marginal per query. */
    double marginal_fraction = 0.002;

    /** Response perturbation per 55 C delta (very small). */
    double temp_dropout_at_55c = 0.008;

    /** Number of challenges in the conservative majority filter. */
    int filter_challenges = 5;

    /**
     * Relative pass cost of one evaluation: PreLatPUF writes known
     * data, precharges with reduced tRP, and reads back, costing
     * ~1.8x a plain read pass (Table 4: 1.59 ms vs 0.88 ms).
     */
    double pass_cost = 1.8;
};

/** The PreLatPUF implementation. */
class PrelatPuf : public DramPuf
{
  public:
    explicit PrelatPuf(const PrelatPufParams &params = {});

    const char *name() const override { return "PreLatPUF"; }

    Response evaluate(const SimulatedChip &chip,
                      const Challenge &challenge,
                      const QueryEnv &env) const override;

    Response evaluateFiltered(const SimulatedChip &chip,
                              const Challenge &challenge,
                              const QueryEnv &env) const override;

    int passesPerEvaluation(bool filtered) const override;

    /** Relative cost of one pass vs. a plain read pass. */
    double passCost() const { return params_.pass_cost; }

  private:
    PrelatPufParams params_;
};

} // namespace codic

#endif // CODIC_PUF_PRELAT_PUF_H
