/**
 * @file
 * PUF evaluation-time model (paper Table 4).
 *
 * Two time scales are reported:
 *  - SoftMC scale: the paper measures evaluation latency through the
 *    SoftMC FPGA infrastructure, where one full pass over an 8 KB
 *    segment costs ~0.882 ms (dominated by the host interface, not
 *    by DRAM timing). Pass counts per mechanism follow from the
 *    mechanisms themselves: the DRAM Latency PUF needs 100 read
 *    passes, PreLatPUF needs a write+disturb+read sequence worth
 *    1.8 read-passes, CODIC-sig needs a single pass; filters multiply
 *    by the number of repeated challenges.
 *  - Native scale: the command-level latency the same evaluation
 *    would take on a real memory controller, computed by streaming
 *    the actual command sequence through the cycle-accurate channel.
 */

#ifndef CODIC_PUF_RESPONSE_TIME_H
#define CODIC_PUF_RESPONSE_TIME_H

#include <string>

#include "dram/config.h"

namespace codic {

/** Which PUF's evaluation sequence to time. */
enum class PufKind { CodicSig, CodicSigOpt, Prelat, Latency };

/** Evaluation time at both reporting scales. */
struct EvalTime
{
    double softmc_ms; //!< Paper's Table 4 scale.
    double native_ns; //!< Cycle-accurate command-level latency.
};

/** Model constants. */
struct ResponseTimeParams
{
    /** SoftMC cost of one full pass over an 8 KB segment (ms). */
    double softmc_pass_ms = 0.882;

    /** PreLatPUF pass cost relative to a read pass. */
    double prelat_pass_cost = 1.8;

    /** DRAM Latency PUF filter reads. */
    int latency_reads = 100;

    /** CODIC-sig / PreLatPUF conservative filter depth. */
    int filter_challenges = 5;

    /** Segment size in bytes (paper: 8 KB). */
    int64_t segment_bytes = 8192;
};

/**
 * Evaluation time of one PUF over one segment.
 * @param kind PUF mechanism.
 * @param filtered Apply the PUF's production filter.
 * @param config DRAM device to compute the native time against.
 * @param params Model constants.
 */
EvalTime evaluationTime(PufKind kind, bool filtered,
                        const DramConfig &config,
                        const ResponseTimeParams &params = {});

/** Display name of a PufKind. */
const char *pufKindName(PufKind kind);

} // namespace codic

#endif // CODIC_PUF_RESPONSE_TIME_H
