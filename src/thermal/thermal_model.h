/**
 * @file
 * RC-style per-bank thermal model closing the loop the paper only
 * measures statically: per-bank epoch activity (thermal/epoch_stats.h)
 * converts to epoch energy through the command-level energy model
 * (power/energy_model.h), energy to temperature through a first-order
 * RC network per bank, and temperature feeds back into the chip model
 * (QueryEnv::temperature_c) so PUF dropout, retention decay, and
 * sig-cell appearance respond to DRAM activity.
 *
 * Discretization (exact for piecewise-constant power, so the update
 * is unconditionally stable at any epoch length):
 *
 *   T_ss  = ambient + P / G
 *   T'    = T_ss + (T - T_ss) * exp(-G * dt / C)
 *
 * with P the bank's average epoch power from activity energy only.
 * Background/standby power is calibrated into the ambient operating
 * point, so a fully idle system sits at exactly `ambient_c` and the
 * closed loop reproduces the paper's static 30 C numbers bit-for-bit
 * (the idle-convergence invariant CI pins).
 *
 * The RC constants are calibrated for simulation timescales (a
 * sustained write storm moves a bank by tens of degrees within a few
 * hundred microseconds) rather than for the seconds-scale thermal
 * mass of a physical module: the paper's temperature campaigns span
 * 25 C deltas, and the scenarios need to traverse that range inside
 * tractable simulated time.
 */

#ifndef CODIC_THERMAL_THERMAL_MODEL_H
#define CODIC_THERMAL_THERMAL_MODEL_H

#include <cstdint>
#include <vector>

#include "power/energy_model.h"
#include "thermal/epoch_stats.h"

namespace codic {

/** Thermal network parameters (per bank). */
struct ThermalConfig
{
    /** Ambient / heat-sink temperature, C (the idle fixed point). */
    double ambient_c = 30.0;

    /** Bank-to-ambient thermal conductance, W/K. */
    double conductance_w_per_k = 0.04;

    /** Bank thermal capacitance, J/K (tau = C/G = 400 us default). */
    double capacitance_j_per_k = 1.6e-5;

    /** Epoch length, microseconds. */
    double epoch_us = 100.0;

    /** Static power of a bank holding a row open, mW. */
    double open_row_mw = 2.0;

    /** Modeled ambient range (chip model calibration limits). */
    static constexpr double kMinAmbientC = -40.0;
    static constexpr double kMaxAmbientC = 120.0;

    /** Reject out-of-contract values with a clear FatalError. */
    void validate() const;
};

/** Per-bank RC thermal state advanced one epoch at a time. */
class ThermalModel
{
  public:
    /**
     * @param config Network parameters (validated).
     * @param banks Bank count (EpochStats::bankCount()).
     * @param energy Command energy constants.
     */
    ThermalModel(const ThermalConfig &config, size_t banks,
                 const EnergyParams &energy = {});

    const ThermalConfig &config() const { return config_; }

    /** Banks tracked. */
    size_t bankCount() const { return temp_c_.size(); }

    /**
     * Activity energy of one bank's epoch, in nJ: ACT/PRE pairs,
     * column bursts, the bank's share of rank REFs, and the row-open
     * static term over the open residency.
     */
    double bankEnergyNj(const BankEpochActivity &activity,
                        double tck_ns) const;

    /**
     * Advance every bank one epoch of `epoch_ns` given its activity
     * (index-aligned with the construction-time bank order).
     */
    void stepEpoch(const std::vector<BankEpochActivity> &activity,
                   double epoch_ns, double tck_ns);

    /** Idle step: every bank relaxes toward ambient for epoch_ns. */
    void stepIdle(double epoch_ns);

    /** Temperature of one bank, C. */
    double bankTemp(size_t i) const { return temp_c_[i]; }

    /** Hottest bank temperature, C. */
    double maxTemp() const;

    /** Index of the hottest bank (lowest index on ties). */
    size_t hottestBank() const;

    /** Mean bank temperature, C. */
    double meanTemp() const;

  private:
    ThermalConfig config_;
    EnergyParams energy_;
    std::vector<double> temp_c_;
};

/**
 * Hysteresis throttle for the thermal_throttling scenario: engages
 * above the ceiling, releases below the floor, never chatters in the
 * band between.
 */
class ThermalThrottle
{
  public:
    ThermalThrottle(double ceiling_c, double floor_c);

    /** Update with the current hottest temperature; new state. */
    bool update(double temp_c);

    bool throttled() const { return throttled_; }

    /** Times the throttle engaged (false -> true transitions). */
    uint64_t engagements() const { return engagements_; }

  private:
    double ceiling_c_;
    double floor_c_;
    bool throttled_ = false;
    uint64_t engagements_ = 0;
};

} // namespace codic

#endif // CODIC_THERMAL_THERMAL_MODEL_H
