/**
 * @file
 * Per-bank epoch activity accounting for the thermal feedback loop.
 *
 * The DRAM counters (CommandCounts::per_bank, DramChannel row-open
 * residency) are cumulative and never reset - the golden outputs of
 * the paper campaigns depend on that. Epoch semantics come from
 * snapshot differencing instead: beginEpoch() snapshots the
 * cumulative state, endEpoch() returns the delta and re-snapshots,
 * so the same DramSystem serves blocking consumers and the thermal
 * loop simultaneously with zero interference.
 */

#ifndef CODIC_THERMAL_EPOCH_STATS_H
#define CODIC_THERMAL_EPOCH_STATS_H

#include <cstdint>
#include <vector>

#include "dram/config.h"

namespace codic {

class DramSystem;

/** One bank's activity within one epoch. */
struct BankEpochActivity
{
    int channel = 0;
    int rank = 0;
    int bank = 0;
    uint64_t act = 0;
    uint64_t rd = 0;
    uint64_t wr = 0;
    uint64_t ref = 0;
    /** Row-open residency within the epoch, in DRAM cycles. */
    Cycle open_cycles = 0;
};

/** Epoch-resettable view over a DramSystem's per-bank activity. */
class EpochStats
{
  public:
    /** Binds to the system and snapshots its current state. */
    explicit EpochStats(DramSystem &system);

    /** Banks tracked (channels * ranks * banks). */
    size_t bankCount() const { return snap_.size(); }

    /** Restart the epoch at `now` (drop activity since last snap). */
    void beginEpoch(Cycle now);

    /**
     * Activity since the last begin/end, sampled at `now`; the next
     * epoch starts here. Order: channel-major, then rank, then bank.
     */
    std::vector<BankEpochActivity> endEpoch(Cycle now);

  private:
    std::vector<BankEpochActivity> snapshotAt(Cycle now) const;

    DramSystem &system_;
    std::vector<BankEpochActivity> snap_;
};

} // namespace codic

#endif // CODIC_THERMAL_EPOCH_STATS_H
