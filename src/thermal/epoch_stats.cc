#include "thermal/epoch_stats.h"

#include "common/logging.h"
#include "dram/system.h"

namespace codic {

EpochStats::EpochStats(DramSystem &system) : system_(system)
{
    snap_ = snapshotAt(0);
}

std::vector<BankEpochActivity>
EpochStats::snapshotAt(Cycle now) const
{
    const DramConfig &cfg = system_.config();
    std::vector<BankEpochActivity> out;
    out.reserve(static_cast<size_t>(system_.channelCount()) *
                static_cast<size_t>(cfg.ranks * cfg.banks));
    for (int c = 0; c < system_.channelCount(); ++c) {
        const DramChannel &ch =
            static_cast<const DramSystem &>(system_).channel(c);
        const auto &per_bank = ch.counts().per_bank;
        for (int r = 0; r < cfg.ranks; ++r) {
            for (int b = 0; b < cfg.banks; ++b) {
                const size_t bi =
                    static_cast<size_t>(r * cfg.banks + b);
                BankEpochActivity a;
                a.channel = c;
                a.rank = r;
                a.bank = b;
                a.act = per_bank[bi].act;
                a.rd = per_bank[bi].rd;
                a.wr = per_bank[bi].wr;
                a.ref = per_bank[bi].ref;
                a.open_cycles = ch.openResidency(r, b, now);
                out.push_back(a);
            }
        }
    }
    return out;
}

void
EpochStats::beginEpoch(Cycle now)
{
    snap_ = snapshotAt(now);
}

std::vector<BankEpochActivity>
EpochStats::endEpoch(Cycle now)
{
    std::vector<BankEpochActivity> current = snapshotAt(now);
    CODIC_ASSERT(current.size() == snap_.size());
    std::vector<BankEpochActivity> delta = current;
    for (size_t i = 0; i < delta.size(); ++i) {
        delta[i].act -= snap_[i].act;
        delta[i].rd -= snap_[i].rd;
        delta[i].wr -= snap_[i].wr;
        delta[i].ref -= snap_[i].ref;
        delta[i].open_cycles -= snap_[i].open_cycles;
    }
    snap_ = std::move(current);
    return delta;
}

} // namespace codic
