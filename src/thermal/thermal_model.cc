#include "thermal/thermal_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace codic {

void
ThermalConfig::validate() const
{
    // Negated comparisons so NaN is rejected everywhere.
    if (!(ambient_c >= kMinAmbientC) || !(ambient_c <= kMaxAmbientC))
        fatal("ThermalConfig: ambient_c must be within the modeled ",
              kMinAmbientC, "..", kMaxAmbientC, " C range, got ",
              ambient_c);
    if (!(conductance_w_per_k > 0.0) || std::isinf(conductance_w_per_k))
        fatal("ThermalConfig: conductance_w_per_k must be finite and "
              "> 0, got ", conductance_w_per_k);
    if (!(capacitance_j_per_k > 0.0) || std::isinf(capacitance_j_per_k))
        fatal("ThermalConfig: capacitance_j_per_k must be finite and "
              "> 0, got ", capacitance_j_per_k);
    if (!(epoch_us > 0.0) || std::isinf(epoch_us))
        fatal("ThermalConfig: epoch_us must be finite and > 0, got ",
              epoch_us);
    if (!(open_row_mw >= 0.0) || std::isinf(open_row_mw))
        fatal("ThermalConfig: open_row_mw must be finite and >= 0, "
              "got ", open_row_mw);
}

ThermalModel::ThermalModel(const ThermalConfig &config, size_t banks,
                           const EnergyParams &energy)
    : config_(config), energy_(energy)
{
    config_.validate();
    CODIC_ASSERT(banks > 0);
    temp_c_.assign(banks, config_.ambient_c);
}

double
ThermalModel::bankEnergyNj(const BankEpochActivity &activity,
                           double tck_ns) const
{
    const double open_ns =
        static_cast<double>(activity.open_cycles) * tck_ns;
    return static_cast<double>(activity.act) * actPreEnergyNj(energy_) +
           static_cast<double>(activity.rd) * energy_.rd_burst_nj +
           static_cast<double>(activity.wr) * energy_.wr_burst_nj +
           static_cast<double>(activity.ref) * energy_.ref_nj +
           // mW * ns = 1e-12 J = 1e-3 nJ.
           open_ns * config_.open_row_mw * 1e-3;
}

void
ThermalModel::stepEpoch(const std::vector<BankEpochActivity> &activity,
                        double epoch_ns, double tck_ns)
{
    CODIC_ASSERT(activity.size() == temp_c_.size(),
                 "thermal step with mismatched bank count");
    CODIC_ASSERT(epoch_ns > 0.0);
    const double g = config_.conductance_w_per_k;
    const double dt_s = epoch_ns * 1e-9;
    const double decay =
        std::exp(-g * dt_s / config_.capacitance_j_per_k);
    for (size_t i = 0; i < temp_c_.size(); ++i) {
        // Average epoch power from activity energy only: an idle
        // bank has P = 0 and T_ss = ambient exactly (the idle
        // fixed-point invariant; background power is part of the
        // ambient calibration).
        const double power_w =
            bankEnergyNj(activity[i], tck_ns) * 1e-9 / dt_s;
        const double t_ss = config_.ambient_c + power_w / g;
        temp_c_[i] = t_ss + (temp_c_[i] - t_ss) * decay;
    }
}

void
ThermalModel::stepIdle(double epoch_ns)
{
    CODIC_ASSERT(epoch_ns > 0.0);
    const double decay =
        std::exp(-config_.conductance_w_per_k * epoch_ns * 1e-9 /
                 config_.capacitance_j_per_k);
    for (double &t : temp_c_)
        t = config_.ambient_c + (t - config_.ambient_c) * decay;
}

double
ThermalModel::maxTemp() const
{
    return *std::max_element(temp_c_.begin(), temp_c_.end());
}

size_t
ThermalModel::hottestBank() const
{
    return static_cast<size_t>(
        std::max_element(temp_c_.begin(), temp_c_.end()) -
        temp_c_.begin());
}

double
ThermalModel::meanTemp() const
{
    double sum = 0.0;
    for (double t : temp_c_)
        sum += t;
    return sum / static_cast<double>(temp_c_.size());
}

ThermalThrottle::ThermalThrottle(double ceiling_c, double floor_c)
    : ceiling_c_(ceiling_c), floor_c_(floor_c)
{
    CODIC_ASSERT(floor_c_ < ceiling_c_,
                 "throttle floor must sit below the ceiling");
}

bool
ThermalThrottle::update(double temp_c)
{
    if (!throttled_ && temp_c > ceiling_c_) {
        throttled_ = true;
        ++engagements_;
    } else if (throttled_ && temp_c < floor_c_) {
        throttled_ = false;
    }
    return throttled_;
}

} // namespace codic
