/**
 * @file
 * Structured result emission for evaluation scenarios.
 *
 * Every campaign reports its results as named rows through a
 * ResultSink instead of printf, so one scenario run can
 * simultaneously produce the human-readable tables of the paper
 * (TextResultSink), machine-readable JSON (JsonResultSink), and
 * long-format CSV (CsvResultSink).
 *
 * Determinism contract: with RunOptions::emit_timings == false (the
 * default), JSON and CSV output contain only values that are pure
 * functions of (seed, scale) - wall-clock measurements are tagged at
 * insertion (ResultRow::addTiming) and dropped - so structured
 * output is byte-identical for a fixed seed at any thread count.
 */

#ifndef CODIC_COMMON_RESULT_SINK_H
#define CODIC_COMMON_RESULT_SINK_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/run_options.h"

namespace codic {

/** One typed cell of a result row. */
struct ResultValue
{
    enum class Kind { String, Double, Int, Uint, Bool };

    Kind kind = Kind::String;
    std::string s;
    double d = 0.0;
    int64_t i = 0;
    uint64_t u = 0;
    bool b = false;

    /**
     * Wall-clock measurement: shown by text sinks, excluded from
     * structured sinks unless RunOptions::emit_timings is set.
     */
    bool timing = false;

    /** Render for JSON (numbers via shortest round-trip form). */
    std::string json() const;

    /** Render for CSV cells (full precision). */
    std::string text() const;

    /** Render for human-facing tables (doubles at 6 sig. digits). */
    std::string display() const;
};

/** One named row of scenario output (ordered key -> value pairs). */
class ResultRow
{
  public:
    ResultRow &add(std::string key, std::string value);
    ResultRow &add(std::string key, const char *value);
    ResultRow &add(std::string key, double value);
    ResultRow &add(std::string key, int value);
    ResultRow &add(std::string key, int64_t value);
    ResultRow &add(std::string key, uint64_t value);
    ResultRow &add(std::string key, bool value);

    /** Add a wall-clock measurement (see ResultValue::timing). */
    ResultRow &addTiming(std::string key, double value);

    const std::vector<std::pair<std::string, ResultValue>> &
    values() const
    {
        return values_;
    }

  private:
    ResultRow &push(std::string key, ResultValue v);

    std::vector<std::pair<std::string, ResultValue>> values_;
};

/** Receiver of structured scenario output. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Open one scenario's output block. */
    virtual void beginScenario(const std::string &name,
                               const std::string &description,
                               const RunOptions &options) = 0;

    /** Emit one result row into a named section (a paper table). */
    virtual void row(const std::string &section,
                     const ResultRow &r) = 0;

    /** Emit one free-form commentary line. */
    virtual void note(const std::string &text) = 0;

    /** Close the current scenario's output block. */
    virtual void endScenario() = 0;
};

/**
 * JSON writer: the whole run is one top-level array with one object
 * per scenario:
 * @code
 * [{"scenario": "...", "description": "...",
 *   "options": {"seed": 7, "scale": 1, ...},
 *   "rows": [{"section": "...", "key": value, ...}, ...],
 *   "notes": ["..."]}]
 * @endcode
 * Key order is insertion order; `threads`, `shards`, and
 * `store_path` are deliberately absent from "options" (results must
 * not depend on the first two, and a filesystem path is environment
 * detail, not an experiment parameter). finish() closes the array.
 */
class JsonResultSink : public ResultSink
{
  public:
    explicit JsonResultSink(std::ostream &out);
    ~JsonResultSink() override;

    void beginScenario(const std::string &name,
                       const std::string &description,
                       const RunOptions &options) override;
    void row(const std::string &section, const ResultRow &r) override;
    void note(const std::string &text) override;
    void endScenario() override;

    /** Close the top-level array (idempotent; also run by dtor). */
    void finish();

  private:
    std::ostream &out_;
    bool emit_timings_ = false;
    bool any_scenario_ = false;
    bool finished_ = false;
    std::string header_;             //!< Current scenario preamble.
    std::vector<std::string> rows_;  //!< Serialized row objects.
    std::vector<std::string> notes_; //!< Escaped note strings.
};

/**
 * Long-format CSV writer: one line per value,
 * `scenario,seed,section,row,key,value`, which stays valid no matter
 * how row shapes differ across sections and scenarios (the seed
 * column keeps --repeats iterations distinguishable).
 */
class CsvResultSink : public ResultSink
{
  public:
    explicit CsvResultSink(std::ostream &out);

    void beginScenario(const std::string &name,
                       const std::string &description,
                       const RunOptions &options) override;
    void row(const std::string &section, const ResultRow &r) override;
    void note(const std::string &text) override;
    void endScenario() override;

  private:
    std::ostream &out_;
    std::string scenario_;
    uint64_t seed_ = 0;
    bool emit_timings_ = false;
    size_t row_index_ = 0;
};

/**
 * Human-facing renderer: consecutive rows of one section become one
 * aligned TextTable (column order from the first row), notes print
 * as prose. Timing values are always shown.
 */
class TextResultSink : public ResultSink
{
  public:
    explicit TextResultSink(std::ostream &out);

    void beginScenario(const std::string &name,
                       const std::string &description,
                       const RunOptions &options) override;
    void row(const std::string &section, const ResultRow &r) override;
    void note(const std::string &text) override;
    void endScenario() override;

  private:
    void flushSection();

    std::ostream &out_;
    std::string section_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> pending_;
};

/** Fan-out to several sinks (e.g. text to stdout + JSON to a file). */
class MultiResultSink : public ResultSink
{
  public:
    void addSink(ResultSink *sink); //!< Not owned; may be null.

    void beginScenario(const std::string &name,
                       const std::string &description,
                       const RunOptions &options) override;
    void row(const std::string &section, const ResultRow &r) override;
    void note(const std::string &text) override;
    void endScenario() override;

  private:
    std::vector<ResultSink *> sinks_;
};

} // namespace codic

#endif // CODIC_COMMON_RESULT_SINK_H
