/**
 * @file
 * Allocation-free hot-path storage primitives: a growable slot arena
 * with free-list recycling and generation-tagged handles, and a
 * growable power-of-two ring buffer.
 *
 * Both containers exist for the simulator hot path (the FR-FCFS
 * controller tracks one record per live ticket, and completion queues
 * push/pop on every transaction): after warm-up they never touch the
 * allocator again, which is where the ramulator-style tight-loop
 * throughput comes from.
 */

#ifndef CODIC_COMMON_POOL_H
#define CODIC_COMMON_POOL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace codic {

/**
 * Growable slot arena handing out stable 64-bit handles with
 * free-list recycling.
 *
 * A handle packs (generation << 32) | (slot + 1), so it is never 0
 * (callers reuse their existing "0 = invalid" sentinel) and a handle
 * released once goes permanently stale: the slot's generation is
 * bumped on release, so a later find() with the old handle returns
 * nullptr instead of aliasing the slot's next occupant.
 *
 * The arena grows on demand (a campaign that keeps thousands of
 * tickets live, like a row-granular zeroing sweep, just widens the
 * slot vector) but recycles aggressively: a submit/resolve loop with
 * bounded in-flight count reaches a steady state where allocate() and
 * release() are a pop/push on the free list and never allocate.
 */
template <typename T>
class SlotArena
{
  public:
    /** Store `value` in a fresh or recycled slot; returns its handle. */
    uint64_t allocate(const T &value)
    {
        uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            slots_[slot].value = value;
        } else {
            slot = static_cast<uint32_t>(slots_.size());
            slots_.push_back(Slot{value, 1});
        }
        ++live_;
        return (static_cast<uint64_t>(slots_[slot].generation) << 32) |
               (static_cast<uint64_t>(slot) + 1);
    }

    /** Live slot behind `handle`, or nullptr if stale/never issued. */
    T *find(uint64_t handle)
    {
        const uint64_t low = handle & 0xffffffffull;
        if (low == 0 || low > slots_.size())
            return nullptr;
        Slot &s = slots_[static_cast<size_t>(low - 1)];
        if (s.generation != static_cast<uint32_t>(handle >> 32))
            return nullptr;
        return &s.value;
    }

    const T *find(uint64_t handle) const
    {
        return const_cast<SlotArena *>(this)->find(handle);
    }

    /** Recycle `handle`'s slot; a stale handle is a no-op. */
    void release(uint64_t handle)
    {
        const uint64_t low = handle & 0xffffffffull;
        if (low == 0 || low > slots_.size())
            return;
        Slot &s = slots_[static_cast<size_t>(low - 1)];
        if (s.generation != static_cast<uint32_t>(handle >> 32))
            return;
        ++s.generation; // Stale-ify every outstanding copy.
        free_.push_back(static_cast<uint32_t>(low - 1));
        --live_;
    }

    /** Handles currently live (allocated, not yet released). */
    size_t liveCount() const { return live_; }

    /** Slots ever allocated (live + recyclable). */
    size_t slotCount() const { return slots_.size(); }

  private:
    struct Slot
    {
        T value{};
        /** Bumped on release; a handle must match to resolve. */
        uint32_t generation = 1;
    };

    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
    size_t live_ = 0;
};

/**
 * Growable FIFO ring buffer over a power-of-two slab.
 *
 * Index math is a mask, growth doubles the slab (rare: steady-state
 * occupancy is bounded by the consumer), and unlike std::deque there
 * is no per-chunk indirection or allocation on the push/pop path.
 */
template <typename T>
class RingBuffer
{
  public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    const T &front() const
    {
        CODIC_ASSERT(size_ > 0);
        return slab_[head_];
    }

    void push_back(const T &value)
    {
        if (size_ == slab_.size())
            grow();
        slab_[(head_ + size_) & (slab_.size() - 1)] = value;
        ++size_;
    }

    void pop_front()
    {
        CODIC_ASSERT(size_ > 0);
        head_ = (head_ + 1) & (slab_.size() - 1);
        --size_;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void grow()
    {
        const size_t cap = slab_.empty() ? 16 : slab_.size() * 2;
        std::vector<T> next(cap);
        for (size_t i = 0; i < size_; ++i)
            next[i] = slab_[(head_ + i) & (slab_.size() - 1)];
        slab_.swap(next);
        head_ = 0;
    }

    std::vector<T> slab_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace codic

#endif // CODIC_COMMON_POOL_H
