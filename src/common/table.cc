#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace codic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    CODIC_ASSERT(!header_.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    CODIC_ASSERT(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtTimeNs(double ns)
{
    if (ns < 1e3)
        return fmt(ns, 1) + " ns";
    if (ns < 1e6)
        return fmt(ns / 1e3, 2) + " us";
    if (ns < 1e9)
        return fmt(ns / 1e6, 2) + " ms";
    return fmt(ns / 1e9, 2) + " s";
}

std::string
fmtEnergyNj(double nj)
{
    if (nj < 1.0)
        return fmt(nj * 1e3, 1) + " pJ";
    if (nj < 1e3)
        return fmt(nj, 2) + " nJ";
    if (nj < 1e6)
        return fmt(nj / 1e3, 2) + " uJ";
    if (nj < 1e9)
        return fmt(nj / 1e6, 2) + " mJ";
    return fmt(nj / 1e9, 2) + " J";
}

} // namespace codic
