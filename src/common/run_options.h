/**
 * @file
 * Shared execution options for every evaluation campaign and
 * scenario. Before this header existed each campaign config struct
 * (Jaccard, Monte-Carlo, TRNG, secure-dealloc) re-declared its own
 * `seed`/`threads` pair with `threads = 1` hardcoded, so the
 * CampaignEngine's auto-detection was unreachable from any public
 * config. All of them now embed one RunOptions.
 */

#ifndef CODIC_COMMON_RUN_OPTIONS_H
#define CODIC_COMMON_RUN_OPTIONS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>

#include "common/logging.h"

namespace codic {

/**
 * Options common to every campaign / scenario run.
 *
 * The struct deliberately lives in common/ (below dram/) so campaign
 * configs at any layer can embed it; the DramConfig overrides are
 * plain integers that scenario code applies where it builds its
 * DramConfig (0 keeps the scenario's own default).
 */
struct RunOptions
{
    /**
     * Campaign seed. Every derived RNG stream is a pure function of
     * (seed, task index), never of scheduling - see CampaignEngine.
     * For device-identity seeds (e.g. the TRNG's process-variation
     * identity) this is the device seed.
     */
    uint64_t seed = 1;

    /**
     * CampaignEngine worker threads. 0 = auto-detect the hardware
     * concurrency (the CampaignEngine contract); 1 = inline
     * sequential execution. Results are bit-identical at any value.
     */
    int threads = 0;

    /** Whole-campaign repetitions (repeat r runs with seed + r). */
    int repeats = 1;

    /**
     * Work-scale factor in (0, 1]: campaigns multiply their nominal
     * trial counts (pairs, Monte-Carlo runs, stream bits, ...) by
     * this and clamp to at least one unit. 1.0 reproduces the paper
     * workloads; small values make smoke tests and CI fast.
     */
    double scale = 1.0;

    /** DramConfig override: channel count (0 = scenario default). */
    int channels = 0;

    /** DramConfig override: module capacity (0 = scenario default). */
    int64_t capacity_mb = 0;

    /**
     * Emit wall-clock measurements into machine-readable sinks
     * (JSON/CSV). Off by default so that structured output is
     * byte-deterministic for a fixed seed at any thread count; text
     * sinks always show timings.
     */
    bool emit_timings = false;

    // --- Fleet options (scenarios under src/fleet) ---

    /** Fleet population size (0 = scenario default). */
    int64_t devices = 0;

    /**
     * Fleet shard count (0 = scenario default). Like `threads`, an
     * execution parameter: structured results never depend on it.
     */
    int shards = 0;

    /** Fleet request-stream length (0 = scenario default). */
    int64_t requests = 0;

    /**
     * Device-popularity Zipf exponent for fleet traffic: negative =
     * scenario default, 0 = uniform, larger = more skew.
     */
    double zipf = -1.0;

    /**
     * Enrollment-store file for fleet scenarios ("" = in-memory).
     * A ".json" suffix selects the JSON format, else binary.
     */
    std::string store_path;

    /**
     * Serve the --store file through the mmap-backed read path
     * (store_mmap.h) instead of decoding it into heap: flat
     * per-request memory at any store size. Requires a binary
     * --store path (the JSON mirror has no record index).
     */
    bool store_mmap = false;

    /**
     * Serving regions for the multi-region fleet scenarios (0 =
     * scenario default). Each region gets its own population,
     * traffic mix and arrival process on the shared engine.
     */
    int regions = 0;

    /**
     * Admission-control capacity in requests/s for fleet scenarios:
     * -1 = scenario default (fleet_overload derives it from the
     * cost model; other scenarios leave admission off), 0 =
     * admission off, > 0 = explicit token-bucket refill rate.
     */
    double shed = -1.0;

    /**
     * DRAM speed-grade preset ("" = the scenario default, normally
     * the paper's ddr3-1600 baseline): resolved by
     * DramConfig::preset() where a scenario builds its DramConfig
     * from the run options (this struct lives below dram/ so it
     * carries the name only); unknown names are fatal there.
     */
    std::string dram_preset;

    /**
     * Memory-scheduler policy spec ("" = the built-in default): a
     * preset name optionally followed by ":knob=value,..." overrides,
     * e.g. "batched:refresh=auto,read_window=16". Resolved by
     * SchedulerPolicy::parse() where a scenario builds its DramConfig
     * (this struct lives below dram/ so it carries the spec only);
     * unknown presets or knobs are fatal there.
     */
    std::string sched;

    // --- Trace options (scenarios under src/trace) ---

    /**
     * Input trace file for trace scenarios ("" = the scenario's
     * built-in synthetic fallback). Must exist and must differ from
     * record_trace - replaying a file while recording over it would
     * destroy the input mid-read.
     */
    std::string trace_path;

    /**
     * Output path for the DramSystem::submit recording tap ("" =
     * recording off). See trace/recorder.h; multi-threaded runs
     * record reproducibly but not byte-stably.
     */
    std::string record_trace;

    /**
     * Replay inter-arrival rescale: > 1 compresses the trace in
     * time, < 1 stretches it. Must be finite and > 0.
     */
    double trace_speed = 1.0;

    // --- Thermal / co-sim options (scenarios under src/thermal) ---

    /**
     * Ambient temperature (C) of the thermal feedback loop - the
     * idle fixed point. The paper's static campaigns run at 30 C;
     * values outside the chip model's calibrated -40..120 C range
     * are rejected.
     */
    double ambient_c = 30.0;

    /**
     * Thermal/co-sim epoch length in microseconds (0 = the scenario
     * default). Explicit values must be positive and finite.
     */
    double epoch_us = 0.0;

    /**
     * Core count for the multicore co-sim scenarios (0 = scenario
     * default sweep). Like --devices, an explicit value must be
     * >= 1 at the CLI; the sentinel 0 stays legal here.
     */
    int cores = 0;

    /**
     * Reject out-of-contract values with a clear FatalError instead
     * of silently clamping or auto-correcting. Run this at every
     * entry point that accepts externally supplied options.
     */
    void validate() const
    {
        if (threads < 0)
            fatal("RunOptions: threads must be >= 0 (0 = auto), got ",
                  threads);
        if (repeats < 1)
            fatal("RunOptions: repeats must be >= 1, got ", repeats);
        if (!(scale > 0.0) || scale > 1.0)
            fatal("RunOptions: scale must be in (0, 1], got ", scale);
        if (channels < 0)
            fatal("RunOptions: channels must be >= 0, got ", channels);
        if (capacity_mb < 0)
            fatal("RunOptions: capacity_mb must be >= 0, got ",
                  capacity_mb);
        if (devices < 0)
            fatal("RunOptions: devices must be >= 0, got ", devices);
        if (shards < 0)
            fatal("RunOptions: shards must be >= 0, got ", shards);
        if (requests < 0)
            fatal("RunOptions: requests must be >= 0, got ", requests);
        if (regions < 0)
            fatal("RunOptions: regions must be >= 0 (0 = scenario "
                  "default), got ", regions);
        // Negated comparison so NaN is rejected too.
        if ((!(shed >= 0.0) && shed != -1.0) || std::isinf(shed))
            fatal("RunOptions: shed must be finite and >= 0 "
                  "requests/s (or -1 for the scenario default), "
                  "got ", shed);
        if (store_mmap && store_path.empty())
            fatal("RunOptions: --store-mmap needs a --store file to "
                  "map");
        if (store_mmap && store_path.size() >= 5 &&
            store_path.compare(store_path.size() - 5, 5, ".json") ==
                0)
            fatal("RunOptions: --store-mmap needs the binary store "
                  "format; the JSON mirror (", store_path,
                  ") has no record index to map");
        // Negated comparison so NaN is rejected too; infinity would
        // make the Zipf sampler's rejection loop spin forever.
        if ((!(zipf >= 0.0) && zipf != -1.0) || std::isinf(zipf))
            fatal("RunOptions: zipf must be finite and >= 0 (or -1 "
                  "for the scenario default), got ", zipf);
        if (!(trace_speed > 0.0) || std::isinf(trace_speed))
            fatal("RunOptions: trace_speed must be finite and > 0, "
                  "got ", trace_speed);
        if (!trace_path.empty() && trace_path == record_trace)
            fatal("RunOptions: --trace and --record-trace name the "
                  "same file (", trace_path,
                  "); recording over the trace being replayed would "
                  "destroy the input");
        if (!trace_path.empty() &&
            !std::ifstream(trace_path, std::ios::binary).good())
            fatal("RunOptions: trace file does not exist or is not "
                  "readable: ", trace_path);
        // Negated comparisons so NaN is rejected too.
        if (!(ambient_c >= -40.0) || !(ambient_c <= 120.0))
            fatal("RunOptions: ambient_c must be within the modeled "
                  "-40..120 C range, got ", ambient_c);
        if (!(epoch_us >= 0.0) || std::isinf(epoch_us))
            fatal("RunOptions: epoch_us must be finite and >= 0 "
                  "(0 = scenario default), got ", epoch_us);
        if (cores < 0)
            fatal("RunOptions: cores must be >= 0 (0 = scenario "
                  "default), got ", cores);
    }

    /** Threads that will actually run (resolves 0 to the hardware). */
    int resolvedThreads() const
    {
        if (threads > 0)
            return threads;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? static_cast<int>(hw) : 1;
    }

    /**
     * Scale a nominal work amount, keeping at least one unit. An
     * out-of-contract scale is a caller bug (validate() rejects it
     * at every entry point), so it panics instead of clamping
     * silently to a meaningless workload.
     */
    size_t scaled(size_t nominal) const
    {
        CODIC_ASSERT(scale > 0.0 && scale <= 1.0);
        const double s = static_cast<double>(nominal) * scale;
        return std::max<size_t>(1, static_cast<size_t>(s + 0.5));
    }

    /** Apply the channel override to a scenario default. */
    int channelsOr(int fallback) const
    {
        return channels > 0 ? channels : fallback;
    }

    /** Apply the capacity override to a scenario default. */
    int64_t capacityMbOr(int64_t fallback) const
    {
        return capacity_mb > 0 ? capacity_mb : fallback;
    }

    /** Apply the fleet-population override to a scenario default. */
    int64_t devicesOr(int64_t fallback) const
    {
        return devices > 0 ? devices : fallback;
    }

    /** Apply the shard-count override to a scenario default. */
    int shardsOr(int fallback) const
    {
        return shards > 0 ? shards : fallback;
    }

    /** Apply the request-count override to a scenario default. */
    int64_t requestsOr(int64_t fallback) const
    {
        return requests > 0 ? requests : fallback;
    }

    /** Apply the Zipf-exponent override to a scenario default. */
    double zipfOr(double fallback) const
    {
        return zipf < 0.0 ? fallback : zipf;
    }

    /** Apply the region-count override to a scenario default. */
    int regionsOr(int fallback) const
    {
        return regions > 0 ? regions : fallback;
    }

    /** Apply the admission-capacity override to a scenario default. */
    double shedOr(double fallback) const
    {
        return shed < 0.0 ? fallback : shed;
    }

    /** Apply the epoch-length override to a scenario default. */
    double epochUsOr(double fallback) const
    {
        return epoch_us > 0.0 ? epoch_us : fallback;
    }

    /** Apply the core-count override to a scenario default. */
    int coresOr(int fallback) const
    {
        return cores > 0 ? cores : fallback;
    }
};

} // namespace codic

#endif // CODIC_COMMON_RUN_OPTIONS_H
