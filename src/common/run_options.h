/**
 * @file
 * Shared execution options for every evaluation campaign and
 * scenario. Before this header existed each campaign config struct
 * (Jaccard, Monte-Carlo, TRNG, secure-dealloc) re-declared its own
 * `seed`/`threads` pair with `threads = 1` hardcoded, so the
 * CampaignEngine's auto-detection was unreachable from any public
 * config. All of them now embed one RunOptions.
 */

#ifndef CODIC_COMMON_RUN_OPTIONS_H
#define CODIC_COMMON_RUN_OPTIONS_H

#include <algorithm>
#include <cstdint>
#include <thread>

namespace codic {

/**
 * Options common to every campaign / scenario run.
 *
 * The struct deliberately lives in common/ (below dram/) so campaign
 * configs at any layer can embed it; the DramConfig overrides are
 * plain integers that scenario code applies where it builds its
 * DramConfig (0 keeps the scenario's own default).
 */
struct RunOptions
{
    /**
     * Campaign seed. Every derived RNG stream is a pure function of
     * (seed, task index), never of scheduling - see CampaignEngine.
     * For device-identity seeds (e.g. the TRNG's process-variation
     * identity) this is the device seed.
     */
    uint64_t seed = 1;

    /**
     * CampaignEngine worker threads. 0 = auto-detect the hardware
     * concurrency (the CampaignEngine contract); 1 = inline
     * sequential execution. Results are bit-identical at any value.
     */
    int threads = 0;

    /** Whole-campaign repetitions (repeat r runs with seed + r). */
    int repeats = 1;

    /**
     * Work-scale factor in (0, 1]: campaigns multiply their nominal
     * trial counts (pairs, Monte-Carlo runs, stream bits, ...) by
     * this and clamp to at least one unit. 1.0 reproduces the paper
     * workloads; small values make smoke tests and CI fast.
     */
    double scale = 1.0;

    /** DramConfig override: channel count (0 = scenario default). */
    int channels = 0;

    /** DramConfig override: module capacity (0 = scenario default). */
    int64_t capacity_mb = 0;

    /**
     * Emit wall-clock measurements into machine-readable sinks
     * (JSON/CSV). Off by default so that structured output is
     * byte-deterministic for a fixed seed at any thread count; text
     * sinks always show timings.
     */
    bool emit_timings = false;

    /** Threads that will actually run (resolves 0 to the hardware). */
    int resolvedThreads() const
    {
        if (threads > 0)
            return threads;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? static_cast<int>(hw) : 1;
    }

    /** Scale a nominal work amount, keeping at least one unit. */
    size_t scaled(size_t nominal) const
    {
        const double s =
            static_cast<double>(nominal) * std::clamp(scale, 0.0, 1.0);
        return std::max<size_t>(1, static_cast<size_t>(s + 0.5));
    }

    /** Apply the channel override to a scenario default. */
    int channelsOr(int fallback) const
    {
        return channels > 0 ? channels : fallback;
    }

    /** Apply the capacity override to a scenario default. */
    int64_t capacityMbOr(int64_t fallback) const
    {
        return capacity_mb > 0 ? capacity_mb : fallback;
    }
};

} // namespace codic

#endif // CODIC_COMMON_RUN_OPTIONS_H
