/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulation campaigns.
 *
 * All stochastic behaviour in the codebase (process variation draws,
 * workload generation, Monte-Carlo circuit sweeps) flows through Rng so
 * experiments are exactly reproducible from a seed. The generator is
 * xoshiro256** seeded via SplitMix64, which is the standard pairing
 * recommended by the xoshiro authors.
 */

#ifndef CODIC_COMMON_RNG_H
#define CODIC_COMMON_RNG_H

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace codic {

/** SplitMix64 stream, used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Return the next 64-bit value in the stream. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_;
};

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Not thread-safe; create one Rng per logical experiment stream and
 * derive child streams with fork() to keep campaigns independent.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0xC0D1CULL)
    {
        SplitMix64 sm(seed);
        for (auto &s : s_)
            s = sm.next();
    }

    /** Uniform 64-bit draw. */
    uint64_t
    next64()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    below(uint64_t n)
    {
        CODIC_ASSERT(n > 0);
        // Lemire-style rejection to avoid modulo bias.
        uint64_t x = next64();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        uint64_t l = static_cast<uint64_t>(m);
        if (l < n) {
            uint64_t t = -n % n;
            while (l < t) {
                x = next64();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        CODIC_ASSERT(hi >= lo);
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal draw (Box-Muller with caching). */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal draw with explicit mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /**
     * Derive an independent child generator. Children produced with
     * distinct tags are statistically independent of the parent and of
     * each other, so module-level streams never interleave.
     */
    Rng
    fork(uint64_t tag)
    {
        return Rng(next64() ^ (tag * 0x9e3779b97f4a7c15ULL));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4] = {};
    bool have_cached_ = false;
    double cached_ = 0.0;
};

} // namespace codic

#endif // CODIC_COMMON_RNG_H
