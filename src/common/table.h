/**
 * @file
 * Plain-text table renderer used by the benchmark harnesses to print
 * rows in the same layout as the paper's tables and figure series.
 */

#ifndef CODIC_COMMON_TABLE_H
#define CODIC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace codic {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Primitive", "Latency (ns)", "Energy (nJ)"});
 *   t.addRow({"CODIC-sig", "35", "17.2"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string fmt(double value, int precision = 2);

/** Format a time given in nanoseconds with an auto-scaled unit. */
std::string fmtTimeNs(double ns);

/** Format an energy given in nanojoules with an auto-scaled unit. */
std::string fmtEnergyNj(double nj);

} // namespace codic

#endif // CODIC_COMMON_TABLE_H
