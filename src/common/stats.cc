#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace codic {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) / total;
    sum_ += other.sum_;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    CODIC_ASSERT(bins > 0);
    CODIC_ASSERT(hi > lo);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    long bin = static_cast<long>(std::floor((x - lo_) / width));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

uint64_t
Histogram::binCount(size_t bin) const
{
    CODIC_ASSERT(bin < counts_.size());
    return counts_[bin];
}

double
Histogram::binFraction(size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(bin)) /
           static_cast<double>(total_);
}

double
Histogram::binCenter(size_t bin) const
{
    CODIC_ASSERT(bin < counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(bin) + 0.5);
}

std::string
Histogram::ascii() const
{
    static const char ramp[] = " .:-=+*#%@";
    uint64_t peak = 0;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    out.reserve(counts_.size());
    for (uint64_t c : counts_) {
        if (peak == 0) {
            out.push_back(' ');
            continue;
        }
        const size_t idx =
            static_cast<size_t>(std::llround(static_cast<double>(c) * 9.0 /
                                             static_cast<double>(peak)));
        out.push_back(ramp[idx]);
    }
    return out;
}

double
percentile(std::vector<double> samples, double p)
{
    CODIC_ASSERT(!samples.empty());
    CODIC_ASSERT(p >= 0.0 && p <= 100.0);
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace codic
