/**
 * @file
 * Logging and error-reporting helpers used across the CODIC codebase.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user-caused errors
 * (bad configuration), warn()/inform() are advisory.
 */

#ifndef CODIC_COMMON_LOGGING_H
#define CODIC_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace codic {

/** Exception thrown on internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown on user-caused configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
format_into(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format_into(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    format_into(os, rest...);
}

} // namespace detail

/**
 * Abort with a message describing an internal bug. Never returns.
 * Throws PanicError so tests can assert on invariant enforcement.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::format_into(os, args...);
    throw PanicError(os.str());
}

/**
 * Abort with a message describing a user configuration error.
 * Never returns. Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::format_into(os, args...);
    throw FatalError(os.str());
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::format_into(os, args...);
    std::fprintf(stderr, "warn: %s\n", os.str().c_str());
}

/** Print an informational message to stderr; execution continues. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::format_into(os, args...);
    std::fprintf(stderr, "info: %s\n", os.str().c_str());
}

/** Internal-invariant assertion that is active in all build types. */
#define CODIC_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::codic::panic("assertion '" #cond "' failed at ", __FILE__,     \
                           ":", __LINE__);                                   \
        }                                                                    \
    } while (0)

} // namespace codic

#endif // CODIC_COMMON_LOGGING_H
