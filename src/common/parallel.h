/**
 * @file
 * Work-stealing campaign engine for embarrassingly parallel
 * simulation sweeps (PUF Jaccard campaigns, Monte-Carlo circuit
 * sweeps, secure-deallocation mechanism comparisons).
 *
 * Determinism contract: the engine never introduces scheduling
 * dependence into results. Callers split a campaign into indexed
 * tasks, derive one Rng stream per index up front (forkStreams), and
 * write each task's result into its own slot. Under that discipline a
 * campaign is bit-identical for a fixed seed at any thread count,
 * which the test suite asserts for every converted campaign.
 */

#ifndef CODIC_COMMON_PARALLEL_H
#define CODIC_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace codic {

/**
 * Thread pool with per-worker chunk deques and work stealing.
 *
 * Workers (and the calling thread, which participates) pop chunks
 * from the back of their own deque and steal from the front of a
 * victim's deque when theirs runs dry, so imbalanced tasks (e.g. a
 * chip whose PUF filter converges slowly) migrate to idle threads.
 *
 * The engine owns its worker threads for its whole lifetime; a
 * `threads() == 1` engine executes inline with no pool, which IS the
 * sequential path (there is no separate sequential implementation to
 * drift from).
 */
class CampaignEngine
{
  public:
    /**
     * @param threads Worker count. 0 picks the hardware concurrency;
     *        1 runs every campaign inline on the calling thread.
     */
    explicit CampaignEngine(int threads = 0);
    ~CampaignEngine();

    CampaignEngine(const CampaignEngine &) = delete;
    CampaignEngine &operator=(const CampaignEngine &) = delete;

    /** Number of threads that execute tasks (including the caller). */
    int threads() const { return threads_; }

    /**
     * Execute fn(i) for every i in [0, n). Blocks until all tasks
     * complete. The first exception thrown by a task is rethrown here
     * after the campaign drains; remaining tasks are skipped.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Indexed map: out[i] = fn(i). Result order is index order, so
     * output is independent of scheduling.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        forEach(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    struct Impl;

    int threads_;
    std::unique_ptr<Impl> impl_; //!< Null when threads_ == 1.
};

/**
 * Derive n independent per-task Rng streams from one campaign seed.
 *
 * The streams are produced by sequential fork() calls on a fresh root
 * generator, so they depend only on (seed, index) - never on which
 * thread later consumes them.
 */
std::vector<Rng> forkStreams(uint64_t seed, size_t n);

} // namespace codic

#endif // CODIC_COMMON_PARALLEL_H
