#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace codic {

/**
 * Pool internals. One chunk deque per participant (workers plus the
 * calling thread). Queues are guarded by per-queue mutexes: owners
 * pop from the back, thieves from the front, so a steal touches the
 * cold end of a victim's queue.
 */
struct CampaignEngine::Impl
{
    struct Chunk
    {
        size_t begin;
        size_t end;
    };

    explicit Impl(size_t participants)
        : queues(participants), queue_mutexes(participants)
    {
        for (auto &m : queue_mutexes)
            m = std::make_unique<std::mutex>();
    }

    std::vector<std::deque<Chunk>> queues;
    std::vector<std::unique_ptr<std::mutex>> queue_mutexes;
    std::vector<std::thread> workers;

    std::mutex job_mutex;
    std::condition_variable job_start;
    std::condition_variable job_done;
    uint64_t epoch = 0;
    bool shutdown = false;

    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> chunks_done{0};
    size_t chunks_total = 0;
    std::atomic<bool> cancelled{false};
    std::exception_ptr error;

    bool
    takeChunk(size_t self, Chunk *out)
    {
        {
            std::lock_guard<std::mutex> lk(*queue_mutexes[self]);
            if (!queues[self].empty()) {
                *out = queues[self].back();
                queues[self].pop_back();
                return true;
            }
        }
        // Steal from the front of the first non-empty victim.
        for (size_t v = 0; v < queues.size(); ++v) {
            if (v == self)
                continue;
            std::lock_guard<std::mutex> lk(*queue_mutexes[v]);
            if (!queues[v].empty()) {
                *out = queues[v].front();
                queues[v].pop_front();
                return true;
            }
        }
        return false;
    }

    /** Run chunks until every queue is dry (worker or caller). */
    void
    participate(size_t self)
    {
        Chunk c;
        while (takeChunk(self, &c)) {
            if (!cancelled.load(std::memory_order_relaxed)) {
                try {
                    for (size_t i = c.begin; i < c.end; ++i) {
                        if (cancelled.load(std::memory_order_relaxed))
                            break;
                        (*fn)(i);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lk(job_mutex);
                    if (!error)
                        error = std::current_exception();
                    cancelled.store(true, std::memory_order_relaxed);
                }
            }
            if (chunks_done.fetch_add(1) + 1 == chunks_total) {
                std::lock_guard<std::mutex> lk(job_mutex);
                job_done.notify_all();
            }
        }
    }

    void
    workerLoop(size_t self)
    {
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(job_mutex);
        while (true) {
            job_start.wait(
                lk, [&] { return shutdown || epoch != seen; });
            if (shutdown)
                return;
            seen = epoch;
            lk.unlock();
            participate(self);
            lk.lock();
        }
    }
};

CampaignEngine::CampaignEngine(int threads)
{
    if (threads <= 0) {
        threads =
            static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    threads_ = threads;
    if (threads_ == 1)
        return;
    impl_ = std::make_unique<Impl>(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_ - 1; ++w)
        impl_->workers.emplace_back(
            [this, w] { impl_->workerLoop(static_cast<size_t>(w)); });
}

CampaignEngine::~CampaignEngine()
{
    if (!impl_)
        return;
    {
        std::lock_guard<std::mutex> lk(impl_->job_mutex);
        impl_->shutdown = true;
    }
    impl_->job_start.notify_all();
    for (auto &t : impl_->workers)
        t.join();
}

void
CampaignEngine::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (!impl_) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const size_t parts = static_cast<size_t>(threads_);
    // Several chunks per participant so stealing has work to migrate,
    // but coarse enough to amortize queue traffic.
    const size_t chunk =
        std::max<size_t>(1, n / (parts * 8));
    const size_t total = (n + chunk - 1) / chunk;

    {
        // Publish the job before filling the queues: a worker that is
        // still draining a previous epoch may legally steal new
        // chunks the moment they are pushed.
        std::lock_guard<std::mutex> lk(impl_->job_mutex);
        impl_->fn = &fn;
        impl_->chunks_total = total;
        impl_->chunks_done.store(0);
        impl_->cancelled.store(false);
        impl_->error = nullptr;
    }
    const size_t caller = parts - 1;
    for (size_t c = 0; c < total; ++c) {
        const size_t q = c % parts;
        std::lock_guard<std::mutex> lk(*impl_->queue_mutexes[q]);
        impl_->queues[q].push_back(
            {c * chunk, std::min(n, (c + 1) * chunk)});
    }
    {
        std::lock_guard<std::mutex> lk(impl_->job_mutex);
        ++impl_->epoch;
    }
    impl_->job_start.notify_all();

    impl_->participate(caller);

    std::unique_lock<std::mutex> lk(impl_->job_mutex);
    impl_->job_done.wait(lk, [&] {
        return impl_->chunks_done.load() == impl_->chunks_total;
    });
    impl_->fn = nullptr;
    if (impl_->error)
        std::rethrow_exception(impl_->error);
}

std::vector<Rng>
forkStreams(uint64_t seed, size_t n)
{
    Rng root(seed);
    std::vector<Rng> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(root.fork(i));
    return out;
}

} // namespace codic
