#include "common/result_sink.h"

#include <charconv>
#include <cmath>

#include "common/logging.h"
#include "common/table.h"

namespace codic {

namespace {

/**
 * Shortest round-trip decimal form of a double (std::to_chars), so
 * structured output is compact and byte-deterministic. JSON has no
 * inf/nan literals; clamp them to null.
 */
std::string
doubleToString(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    out.push_back('"');
    for (char c : raw) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

/**
 * RFC 4180 quoting: any cell containing a comma, quote, or line
 * break (\n or \r) is wrapped in quotes with embedded quotes
 * doubled, so free-text labels can never corrupt the row structure.
 */
std::string
csvEscape(const std::string &raw)
{
    if (raw.find_first_of(",\"\n\r") == std::string::npos)
        return raw;
    std::string out = "\"";
    for (char c : raw) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

// --- ResultValue ------------------------------------------------------------

std::string
ResultValue::json() const
{
    switch (kind) {
    case Kind::String: return jsonEscape(s);
    case Kind::Double: return doubleToString(d);
    case Kind::Int: return std::to_string(i);
    case Kind::Uint: return std::to_string(u);
    case Kind::Bool: return b ? "true" : "false";
    }
    return "null";
}

std::string
ResultValue::text() const
{
    switch (kind) {
    case Kind::String: return s;
    case Kind::Double: return doubleToString(d);
    case Kind::Int: return std::to_string(i);
    case Kind::Uint: return std::to_string(u);
    case Kind::Bool: return b ? "yes" : "no";
    }
    return "";
}

std::string
ResultValue::display() const
{
    if (kind != Kind::Double)
        return text();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", d);
    return buf;
}

// --- ResultRow --------------------------------------------------------------

ResultRow &
ResultRow::push(std::string key, ResultValue v)
{
    values_.emplace_back(std::move(key), std::move(v));
    return *this;
}

ResultRow &
ResultRow::add(std::string key, std::string value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::String;
    v.s = std::move(value);
    return push(std::move(key), std::move(v));
}

ResultRow &
ResultRow::add(std::string key, const char *value)
{
    return add(std::move(key), std::string(value));
}

ResultRow &
ResultRow::add(std::string key, double value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::Double;
    v.d = value;
    return push(std::move(key), v);
}

ResultRow &
ResultRow::add(std::string key, int value)
{
    return add(std::move(key), static_cast<int64_t>(value));
}

ResultRow &
ResultRow::add(std::string key, int64_t value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::Int;
    v.i = value;
    return push(std::move(key), v);
}

ResultRow &
ResultRow::add(std::string key, uint64_t value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::Uint;
    v.u = value;
    return push(std::move(key), v);
}

ResultRow &
ResultRow::add(std::string key, bool value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::Bool;
    v.b = value;
    return push(std::move(key), v);
}

ResultRow &
ResultRow::addTiming(std::string key, double value)
{
    ResultValue v;
    v.kind = ResultValue::Kind::Double;
    v.d = value;
    v.timing = true;
    return push(std::move(key), v);
}

// --- JsonResultSink ---------------------------------------------------------

JsonResultSink::JsonResultSink(std::ostream &out) : out_(out) {}

JsonResultSink::~JsonResultSink() { finish(); }

void
JsonResultSink::beginScenario(const std::string &name,
                              const std::string &description,
                              const RunOptions &options)
{
    CODIC_ASSERT(!finished_);
    emit_timings_ = options.emit_timings;
    rows_.clear();
    notes_.clear();
    header_ = "{\"scenario\":" + jsonEscape(name) +
              ",\"description\":" + jsonEscape(description) +
              ",\"options\":{\"seed\":" + std::to_string(options.seed) +
              ",\"scale\":" + doubleToString(options.scale) +
              ",\"repeats\":" + std::to_string(options.repeats) +
              ",\"channels\":" + std::to_string(options.channels) +
              ",\"capacity_mb\":" +
              std::to_string(options.capacity_mb) +
              ",\"devices\":" + std::to_string(options.devices) +
              ",\"requests\":" + std::to_string(options.requests) +
              ",\"zipf\":" + doubleToString(options.zipf) + "}";
}

void
JsonResultSink::row(const std::string &section, const ResultRow &r)
{
    // Rows and notes interleave freely during a run; the object is
    // assembled at endScenario, so buffer the serialized row here.
    std::string line = "{\"section\":" + jsonEscape(section);
    for (const auto &[key, value] : r.values()) {
        if (value.timing && !emit_timings_)
            continue;
        line += "," + jsonEscape(key) + ":" + value.json();
    }
    line += "}";
    rows_.push_back(std::move(line));
}

void
JsonResultSink::note(const std::string &text)
{
    notes_.push_back(jsonEscape(text));
}

void
JsonResultSink::endScenario()
{
    out_ << (any_scenario_ ? ",\n" : "[\n");
    any_scenario_ = true;
    out_ << header_ << ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i)
        out_ << (i ? ",\n " : "\n ") << rows_[i];
    out_ << "],\"notes\":[";
    for (size_t i = 0; i < notes_.size(); ++i)
        out_ << (i ? "," : "") << notes_[i];
    out_ << "]}";
    rows_.clear();
    notes_.clear();
}

void
JsonResultSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_ << (any_scenario_ ? "\n]\n" : "[]\n");
    out_.flush();
}

// --- CsvResultSink ----------------------------------------------------------

CsvResultSink::CsvResultSink(std::ostream &out) : out_(out)
{
    out_ << "scenario,seed,section,row,key,value\n";
}

void
CsvResultSink::beginScenario(const std::string &name,
                             const std::string & /*description*/,
                             const RunOptions &options)
{
    scenario_ = name;
    seed_ = options.seed;
    emit_timings_ = options.emit_timings;
    row_index_ = 0;
}

void
CsvResultSink::row(const std::string &section, const ResultRow &r)
{
    for (const auto &[key, value] : r.values()) {
        if (value.timing && !emit_timings_)
            continue;
        out_ << csvEscape(scenario_) << "," << seed_ << ","
             << csvEscape(section) << "," << row_index_ << ","
             << csvEscape(key) << "," << csvEscape(value.text())
             << "\n";
    }
    ++row_index_;
}

void
CsvResultSink::note(const std::string & /*text*/)
{
    // Commentary is human-facing; CSV carries data rows only.
}

void
CsvResultSink::endScenario()
{
    out_.flush();
}

// --- TextResultSink ---------------------------------------------------------

TextResultSink::TextResultSink(std::ostream &out) : out_(out) {}

void
TextResultSink::beginScenario(const std::string &name,
                              const std::string &description,
                              const RunOptions &options)
{
    out_ << "=== " << name << ": " << description << " ===\n";
    if (options.scale < 1.0)
        out_ << "(scaled run: " << doubleToString(options.scale)
             << "x the paper workload)\n";
}

void
TextResultSink::flushSection()
{
    if (pending_.empty())
        return;
    out_ << "\n--- " << section_ << " ---\n";
    TextTable table(columns_);
    for (auto &row : pending_)
        table.addRow(std::move(row));
    out_ << table.render();
    pending_.clear();
    columns_.clear();
}

void
TextResultSink::row(const std::string &section, const ResultRow &r)
{
    if (section != section_) {
        flushSection();
        section_ = section;
    }
    if (columns_.empty()) {
        for (const auto &[key, value] : r.values())
            columns_.push_back(key);
    }
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto &[key, value] : r.values())
        cells.push_back(value.display());
    // Tolerate shape drift within a section: pad/trim to the header.
    cells.resize(columns_.size());
    pending_.push_back(std::move(cells));
}

void
TextResultSink::note(const std::string &text)
{
    flushSection();
    out_ << text << "\n";
}

void
TextResultSink::endScenario()
{
    flushSection();
    section_.clear();
    out_ << "\n";
    out_.flush();
}

// --- MultiResultSink --------------------------------------------------------

void
MultiResultSink::addSink(ResultSink *sink)
{
    if (sink)
        sinks_.push_back(sink);
}

void
MultiResultSink::beginScenario(const std::string &name,
                               const std::string &description,
                               const RunOptions &options)
{
    for (auto *s : sinks_)
        s->beginScenario(name, description, options);
}

void
MultiResultSink::row(const std::string &section, const ResultRow &r)
{
    for (auto *s : sinks_)
        s->row(section, r);
}

void
MultiResultSink::note(const std::string &text)
{
    for (auto *s : sinks_)
        s->note(text);
}

void
MultiResultSink::endScenario()
{
    for (auto *s : sinks_)
        s->endScenario();
}

} // namespace codic
