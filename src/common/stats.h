/**
 * @file
 * Lightweight statistics accumulators used by experiment harnesses:
 * running mean/variance (Welford), min/max tracking, and fixed-bin
 * histograms for the distribution plots (e.g. Jaccard-index figures).
 */

#ifndef CODIC_COMMON_STATS_H
#define CODIC_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace codic {

/** Online mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    size_t count() const { return n_; }

    /** Sample mean; 0 if empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 if fewer than two samples. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; +inf if empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf if empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Fixed-width histogram over a closed interval [lo, hi].
 *
 * Samples outside the interval are clamped into the end bins so that
 * probability mass is conserved, matching how the paper's distribution
 * plots bucket Jaccard indices into [0, 1].
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the histogram range.
     * @param hi Upper edge of the histogram range (must exceed lo).
     * @param bins Number of equal-width bins (must be nonzero).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    /** Total number of samples. */
    size_t count() const { return total_; }

    /** Raw count in a bin. */
    uint64_t binCount(size_t bin) const;

    /** Fraction of samples in a bin (0 if histogram is empty). */
    double binFraction(size_t bin) const;

    /** Center x-value of a bin. */
    double binCenter(size_t bin) const;

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Smallest sample value mapped to a given bin's left edge. */
    double lo() const { return lo_; }

    /** Histogram range upper edge. */
    double hi() const { return hi_; }

    /**
     * Render a compact ASCII sparkline-style summary,
     * e.g. for bench output ("  .:-=+*#").
     */
    std::string ascii() const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    size_t total_ = 0;
};

/** Percentile over a copy of the sample vector (p in [0,100]). */
double percentile(std::vector<double> samples, double p);

} // namespace codic

#endif // CODIC_COMMON_STATS_H
