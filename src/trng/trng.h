/**
 * @file
 * CODIC-based True Random Number Generator (paper Section 5.3.1:
 * "A substrate such as CODIC would ... enable new TRNGs that exploit
 * new failure mechanisms for generating random numbers").
 *
 * Mechanism: CODIC-sigsa-class commands amplify a precharged bitline
 * from pure SA mismatch plus thermal noise. Cells whose offset
 * magnitude is below the thermal-noise RMS are *metastable*: their
 * outcome is a fresh coin flip on every evaluation. The TRNG
 * enumerates metastable cells once (enrollment), then harvests one
 * raw bit per metastable cell per CODIC command, whitens with a Von
 * Neumann extractor, and guards quality with the SP 800-90B
 * continuous health tests (repetition count + adaptive proportion).
 */

#ifndef CODIC_TRNG_TRNG_H
#define CODIC_TRNG_TRNG_H

#include <cstdint>
#include <vector>

#include "circuit/params.h"
#include "common/rng.h"
#include "common/run_options.h"

namespace codic {

/** One metastable SA/cell site usable as an entropy source. */
struct MetastableCell
{
    uint32_t index;     //!< Position within the enrolled segment.
    double offset;      //!< Residual offset (|offset| < noise RMS).
    double p_one;       //!< Per-evaluation probability of reading 1.
};

/** Configuration of the CODIC TRNG. */
struct TrngConfig
{
    /**
     * Shared options. `run.seed` is the device's process-variation
     * identity (what used to be a separate `device_seed` field);
     * `run.threads` drives population enrollment (enrollDevices).
     */
    RunOptions run;

    CircuitParams params;      //!< Device electricals.
    int segment_bits = 65536;  //!< Segment scanned for sources.
    /**
     * Enrollment keeps cells whose |offset + designed bias| is below
     * this multiple of the thermal-noise RMS (smaller = fewer but
     * less biased sources).
     */
    double metastable_window = 1.0;
    /** Evaluation latency of one harvest command (sigsa-class), ns. */
    double harvest_latency_ns = 35.0;
};

/** SP 800-90B-style continuous health tests. */
class TrngHealthTests
{
  public:
    /**
     * @param repetition_cutoff Consecutive identical bits tolerated.
     * @param window Adaptive-proportion window size.
     * @param proportion_cutoff Max identical bits inside a window.
     */
    TrngHealthTests(int repetition_cutoff = 41, int window = 1024,
                    int proportion_cutoff = 624);

    /** Feed one raw bit; returns false if a health test trips. */
    bool feed(uint8_t bit);

    /** True once any health test has ever tripped. */
    bool failed() const { return failed_; }

    /** Bits observed so far. */
    uint64_t observed() const { return observed_; }

  private:
    int repetition_cutoff_;
    int window_;
    int proportion_cutoff_;
    uint8_t last_bit_ = 2;
    int run_length_ = 0;
    int window_fill_ = 0;
    uint8_t window_first_ = 0;
    int window_matches_ = 0;
    bool failed_ = false;
    uint64_t observed_ = 0;
};

/**
 * The CODIC TRNG: enrollment plus harvest.
 *
 * The simulated entropy source mirrors the circuit model: a
 * deterministic per-device population of SA offsets (hashed from the
 * device seed), with thermal noise supplied per harvest from a
 * physical-noise stream.
 */
class CodicTrng
{
  public:
    explicit CodicTrng(const TrngConfig &config);

    /** Metastable sources found at enrollment. */
    const std::vector<MetastableCell> &sources() const
    {
        return sources_;
    }

    /**
     * Harvest `bits` whitened random bits.
     * @param noise Physical-noise stream (thermal).
     * @param health Optional health-test monitor fed with raw bits.
     */
    std::vector<uint8_t> harvest(size_t bits, Rng &noise,
                                 TrngHealthTests *health = nullptr);

    /**
     * Raw (unwhitened) throughput in bits per second: one CODIC
     * command yields one bit per metastable source.
     */
    double rawThroughputBitsPerSec() const;

    /** Whitened throughput (Von Neumann: ~ p(1-p)/... of raw). */
    double whitenedThroughputBitsPerSec() const;

  private:
    TrngConfig config_;
    std::vector<MetastableCell> sources_;
};

/**
 * Enroll a population of `count` devices (device i has seed
 * base.run.seed + i) through the campaign engine at base.run.threads
 * workers. Enrollment scans segment_bits SA sites per device, which
 * dominates TRNG-characterization sweeps; the returned population is
 * identical at any thread count.
 */
std::vector<CodicTrng> enrollDevices(const TrngConfig &base,
                                     size_t count);

} // namespace codic

#endif // CODIC_TRNG_TRNG_H
