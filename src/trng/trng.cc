#include "trng/trng.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/parallel.h"
#include "nist/extractor.h"
#include "nist/special_functions.h"

namespace codic {

TrngHealthTests::TrngHealthTests(int repetition_cutoff, int window,
                                 int proportion_cutoff)
    : repetition_cutoff_(repetition_cutoff), window_(window),
      proportion_cutoff_(proportion_cutoff)
{
    CODIC_ASSERT(repetition_cutoff > 1);
    CODIC_ASSERT(proportion_cutoff > window / 2);
}

bool
TrngHealthTests::feed(uint8_t bit)
{
    ++observed_;
    // Repetition count test (SP 800-90B 4.4.1).
    if (bit == last_bit_) {
        if (++run_length_ >= repetition_cutoff_)
            failed_ = true;
    } else {
        last_bit_ = bit;
        run_length_ = 1;
    }
    // Adaptive proportion test (SP 800-90B 4.4.2).
    if (window_fill_ == 0) {
        window_first_ = bit;
        window_matches_ = 1;
        window_fill_ = 1;
    } else {
        if (bit == window_first_)
            ++window_matches_;
        if (++window_fill_ >= window_) {
            if (window_matches_ >= proportion_cutoff_)
                failed_ = true;
            window_fill_ = 0;
        }
    }
    return !failed_;
}

CodicTrng::CodicTrng(const TrngConfig &config) : config_(config)
{
    // Enrollment: scan the segment's SA population (deterministic per
    // device) for cells whose effective offset sits inside the
    // metastable window around the trip point.
    Rng device(config_.run.seed ^ 0x7241D);
    const double sigma = saOffsetSigma(config_.params);
    const double bias = designedSaBiasAt(config_.params);
    const double noise_rms = thermalNoiseRms(config_.params);
    const double window = config_.metastable_window * noise_rms;

    for (int i = 0; i < config_.segment_bits; ++i) {
        const double offset = device.gaussian(0.0, sigma);
        const double residual = offset + bias;
        if (std::fabs(residual) < window) {
            MetastableCell cell;
            cell.index = static_cast<uint32_t>(i);
            cell.offset = residual;
            // P(read 1) = P(residual + noise > 0).
            cell.p_one = 1.0 - normalCdf(-residual / noise_rms);
            sources_.push_back(cell);
        }
    }
}

std::vector<uint8_t>
CodicTrng::harvest(size_t bits, Rng &noise, TrngHealthTests *health)
{
    if (sources_.empty())
        fatal("TRNG enrollment found no metastable cells; widen the "
              "window or use a larger segment");
    std::vector<uint8_t> out;
    out.reserve(bits);
    size_t guard = 0;
    while (out.size() < bits) {
        // Two back-to-back CODIC commands: each metastable source
        // flips its coin twice. The Von Neumann pair is formed
        // *per cell across the two evaluations* - pairing adjacent
        // cells would combine different biases p_i != p_j, for which
        // P(01) != P(10) and the extractor output stays biased.
        for (const auto &cell : sources_) {
            const uint8_t first = noise.chance(cell.p_one) ? 1 : 0;
            const uint8_t second = noise.chance(cell.p_one) ? 1 : 0;
            if (health) {
                health->feed(first);
                health->feed(second);
            }
            if (first != second && out.size() < bits)
                out.push_back(first);
        }
        if (++guard > 100 * bits + 1000)
            fatal("TRNG harvest is not converging");
    }
    return out;
}

double
CodicTrng::rawThroughputBitsPerSec() const
{
    return static_cast<double>(sources_.size()) /
           (config_.harvest_latency_ns * 1e-9);
}

std::vector<CodicTrng>
enrollDevices(const TrngConfig &base, size_t count)
{
    // Each device's enrollment scan is deterministic from its own
    // device seed, so devices are independent tasks.
    std::vector<std::unique_ptr<CodicTrng>> enrolled(count);
    CampaignEngine engine(base.run.threads);
    engine.forEach(count, [&](size_t i) {
        TrngConfig cfg = base;
        cfg.run.seed = base.run.seed + i;
        enrolled[i] = std::make_unique<CodicTrng>(cfg);
    });

    std::vector<CodicTrng> out;
    out.reserve(count);
    for (auto &dev : enrolled)
        out.push_back(std::move(*dev));
    return out;
}

double
CodicTrng::whitenedThroughputBitsPerSec() const
{
    // Von Neumann emits one bit per discordant pair; with per-cell
    // p near 1/2 the expected yield is ~1/4 of the raw bits.
    double yield = 0.0;
    for (const auto &cell : sources_)
        yield += cell.p_one * (1.0 - cell.p_one);
    return yield / (config_.harvest_latency_ns * 1e-9);
}

} // namespace codic
