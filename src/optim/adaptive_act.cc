#include "optim/adaptive_act.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace codic {

double
columnReadyNs(const CircuitParams &params, const VariationDraw &draw,
              double threshold_frac)
{
    double worst = 0.0;
    for (double init : {0.0, params.vdd}) {
        CellCircuit cell(params, draw);
        cell.setCellVoltage(init);
        const Transient tr =
            cell.run(variants::activate().schedule, 30.0, nullptr,
                     0.05);
        const bool want_one = init > params.vHalf();
        const double target =
            want_one ? threshold_frac * params.vdd
                     : (1.0 - threshold_frac) * params.vdd;
        double crossing = 30.0;
        for (const auto &p : tr.points) {
            const bool crossed = want_one ? p.v_bitline >= target
                                          : p.v_bitline <= target;
            if (crossed) {
                crossing = p.t_ns;
                break;
            }
        }
        worst = std::max(worst, crossing);
    }
    return worst;
}

RowReadyProfile::RowReadyProfile(const CircuitParams &params,
                                 uint64_t device_seed,
                                 double guardband_ns)
    : device_seed_(device_seed), guardband_ns_(guardband_ns)
{
    // Characterize ten strength deciles once. A row is as slow as
    // its weakest cell, and per-cell access strength has a long weak
    // tail, so the deciles span a wide conductance range: the
    // weakest rows share charge ~2.5x more slowly than nominal.
    decile_ready_ns_.reserve(10);
    for (int d = 0; d < 10; ++d) {
        VariationDraw draw;
        const double frac = static_cast<double>(d) / 9.0;
        draw.access_rel = -0.85 + 1.10 * frac; // [-0.85, +0.25].
        draw.cell_cap_rel = -0.25 + 0.35 * frac;
        const double ready =
            columnReadyNs(params, draw) + guardband_ns;
        decile_ready_ns_.push_back(
            std::min(ready, kNominalReadyNs));
    }
}

double
RowReadyProfile::readyNs(int bank, int64_t row) const
{
    SplitMix64 sm(device_seed_ ^
                  (static_cast<uint64_t>(bank) << 48) ^
                  static_cast<uint64_t>(row) * 0x9e3779b97f4a7c15ULL);
    // Skewed toward the weak end: a row's ready time is the max over
    // its 64Ki cells, which concentrates probability in the slow
    // deciles but still leaves a majority of rows with headroom.
    const uint64_t u = sm.next() % 100;
    size_t decile;
    if (u < 20)
        decile = 0;
    else if (u < 38)
        decile = 1;
    else if (u < 53)
        decile = 2;
    else if (u < 65)
        decile = 3;
    else
        decile = 4 + (u - 65) % 6;
    return decile_ready_ns_[decile];
}

RowReadyProfile::Summary
RowReadyProfile::summarize(int banks, int64_t rows_per_bank) const
{
    Summary s{0.0, 1e9, 0.0, 0.0};
    int64_t n = 0;
    int64_t fast = 0;
    for (int b = 0; b < banks; ++b) {
        for (int64_t r = 0; r < rows_per_bank;
             r += std::max<int64_t>(1, rows_per_bank / 512)) {
            const double ready = readyNs(b, r);
            s.mean_ready_ns += ready;
            s.min_ready_ns = std::min(s.min_ready_ns, ready);
            s.max_ready_ns = std::max(s.max_ready_ns, ready);
            if (ready <= kNominalReadyNs - 1.0)
                ++fast;
            ++n;
        }
    }
    const double nd = static_cast<double>(std::max<int64_t>(n, 1));
    s.mean_ready_ns /= nd;
    s.frac_fast = static_cast<double>(fast) / nd;
    return s;
}

AdaptiveActivator::AdaptiveActivator(DramChannel &channel,
                                     const RowReadyProfile &profile)
    : channel_(channel), profile_(profile),
      act_variant_(channel.registerVariant(variants::activate().schedule))
{
}

Cycle
AdaptiveActivator::activate(int bank, int64_t row, Cycle not_before,
                            bool adaptive)
{
    if (!adaptive) {
        Command act;
        act.type = CommandType::Act;
        act.addr.bank = bank;
        act.addr.row = row;
        return channel_.issueAtEarliest(act, not_before);
    }
    Command codic;
    codic.type = CommandType::Codic;
    codic.addr.bank = bank;
    codic.addr.row = row;
    codic.codic_variant = act_variant_;
    codic.codic_ready_ns = profile_.readyNs(bank, row);
    return channel_.issueAtEarliest(codic, not_before);
}

AdaptiveActResult
evaluateAdaptiveActivation(const CircuitParams &params,
                           uint64_t device_seed, int accesses,
                           uint64_t workload_seed)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const RowReadyProfile profile(params, device_seed);

    auto run = [&](bool adaptive) {
        DramChannel channel(cfg);
        AdaptiveActivator activator(channel, profile);
        Rng rng(workload_seed);
        double total_ns = 0.0;
        Cycle now = 0;
        for (int i = 0; i < accesses; ++i) {
            const int bank =
                static_cast<int>(rng.below(
                    static_cast<uint64_t>(cfg.banks)));
            const int64_t row = static_cast<int64_t>(
                rng.below(static_cast<uint64_t>(cfg.rows)));
            const Cycle start =
                std::max(now, channel.lastIssueCycle());
            const Cycle ready =
                activator.activate(bank, row, start, adaptive);
            Command rd;
            rd.type = CommandType::Rd;
            rd.addr.bank = bank;
            rd.addr.row = row;
            const Cycle data = channel.issueAtEarliest(rd, ready);
            Command pre;
            pre.type = CommandType::Pre;
            pre.addr.bank = bank;
            pre.addr.row = row;
            now = channel.issueAtEarliest(pre, data);
            total_ns += cfg.cyclesToNs(data - start);
        }
        return total_ns / static_cast<double>(accesses);
    };

    AdaptiveActResult result;
    result.baseline_avg_read_ns = run(false);
    result.adaptive_avg_read_ns = run(true);
    result.speedup = result.baseline_avg_read_ns /
                         result.adaptive_avg_read_ns -
                     1.0;
    return result;
}

} // namespace codic
