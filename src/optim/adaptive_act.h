/**
 * @file
 * Custom DRAM latency optimization with CODIC (paper Section 5.3.2):
 * per-row reduced activation latency.
 *
 * Commodity DRAM fixes the wordline-to-sense interval and the
 * sense-to-column-access interval inside a worst-case tRCD. With
 * CODIC the internal timing is explicit, so a system can:
 *
 *  1. characterize each row's actual column-ready time with the
 *     circuit model - the "Accurate DRAM Characterization" use case:
 *     measure when the bitline actually crosses the readable level
 *     during a CODIC-activate, for the row's weakest cell;
 *  2. activate rows with an activation-class CODIC command and count
 *     data-ready from the characterized value (plus a guardband)
 *     instead of the worst-case tRCD - the "Memory Controller Timing
 *     Parameters" use case: the controller *knows* the internal
 *     state, so reduced external timing is safe by construction.
 */

#ifndef CODIC_OPTIM_ADAPTIVE_ACT_H
#define CODIC_OPTIM_ADAPTIVE_ACT_H

#include <cstdint>
#include <vector>

#include "circuit/analog.h"
#include "dram/channel.h"

namespace codic {

/**
 * Circuit-level characterization: the time (ns, from activation
 * start) at which the bitline is amplified far enough for a column
 * access, for a given device instance, worst case over both stored
 * values. Weak access transistors (access_rel < 0) share charge more
 * slowly and cross later.
 *
 * @param params Electrical parameters.
 * @param draw Process-variation instance.
 * @param threshold_frac Fraction of full swing that counts as
 *        "readable" (0.85 of the rail by default).
 */
double columnReadyNs(const CircuitParams &params,
                     const VariationDraw &draw,
                     double threshold_frac = 0.85);

/**
 * Per-row column-ready profile of one simulated device. Each row
 * maps (deterministically per device seed) to a strength decile whose
 * ready time was characterized once with the circuit model; a row's
 * effective strength is its *weakest* cell, so the decile draw is
 * skewed toward the weak end.
 */
class RowReadyProfile
{
  public:
    /**
     * @param params Electrical parameters.
     * @param device_seed Device identity.
     * @param guardband_ns Safety margin added to every row.
     */
    RowReadyProfile(const CircuitParams &params, uint64_t device_seed,
                    double guardband_ns = 1.0);

    /** Characterized + guardbanded column-ready time for a row. */
    double readyNs(int bank, int64_t row) const;

    /** Distribution summary over a sample of rows. */
    struct Summary
    {
        double mean_ready_ns;
        double min_ready_ns;
        double max_ready_ns;
        double frac_fast; //!< Rows at least 1 ns under nominal.
    };
    Summary summarize(int banks, int64_t rows_per_bank) const;

    /** Nominal (worst-case) ready time of the fixed design: tRCD. */
    static constexpr double kNominalReadyNs = 13.75;

  private:
    uint64_t device_seed_;
    double guardband_ns_;
    std::vector<double> decile_ready_ns_;
};

/**
 * Issue helper: open `row` either with a regular ACT (fixed tRCD) or
 * with a CODIC-activate carrying the row's characterized ready time.
 */
class AdaptiveActivator
{
  public:
    AdaptiveActivator(DramChannel &channel,
                      const RowReadyProfile &profile);

    /**
     * Activate the row; returns the cycle at which column accesses
     * may begin.
     */
    Cycle activate(int bank, int64_t row, Cycle not_before,
                   bool adaptive);

  private:
    DramChannel &channel_;
    const RowReadyProfile &profile_;
    int act_variant_;
};

/** Result of the adaptive-activation evaluation. */
struct AdaptiveActResult
{
    double baseline_avg_read_ns;  //!< ACT->data with fixed timing.
    double adaptive_avg_read_ns;  //!< ACT->data with per-row timing.
    double speedup;               //!< On the row-miss critical path.
};

/**
 * Evaluate adaptive activation on a row-miss-heavy access pattern:
 * `accesses` random single-read row activations, fixed vs adaptive.
 */
AdaptiveActResult evaluateAdaptiveActivation(
    const CircuitParams &params, uint64_t device_seed, int accesses,
    uint64_t workload_seed);

} // namespace codic

#endif // CODIC_OPTIM_ADAPTIVE_ACT_H
