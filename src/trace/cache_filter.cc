#include "trace/cache_filter.h"

#include "common/logging.h"
#include "trace/trace_io.h"

namespace codic {

CacheFilter::CacheFilter(const CacheFilterConfig &config)
    : config_(config),
      llc_(config.llc_bytes, config.ways, config.line_bytes)
{
}

void
CacheFilter::process(const TraceRecord &in,
                     std::vector<TraceRecord> &out)
{
    ++stats_.records_in;
    switch (in.kind) {
    case TraceOpKind::Load:
    case TraceOpKind::Store: {
        const bool is_store = in.kind == TraceOpKind::Store;
        if (is_store)
            ++stats_.stores;
        else
            ++stats_.loads;
        const CacheAccessResult r = llc_.access(in.addr, is_store);
        if (r.hit) {
            ++stats_.hits;
            return;
        }
        ++stats_.misses;
        // Write-allocate: a store miss fetches the line first, so
        // both miss kinds cost one DRAM read at the access tick.
        TraceRecord read = in;
        read.kind = TraceOpKind::Read;
        out.push_back(read);
        ++stats_.records_out;
        if (r.writeback) {
            ++stats_.writebacks;
            TraceRecord wb = in;
            wb.kind = TraceOpKind::Write;
            wb.addr = r.victim_addr;
            out.push_back(wb);
            ++stats_.records_out;
        }
        return;
    }
    case TraceOpKind::Flush: {
        ++stats_.flushes;
        if (llc_.flushLine(in.addr)) {
            ++stats_.writebacks;
            TraceRecord wb = in;
            wb.kind = TraceOpKind::Write;
            out.push_back(wb);
            ++stats_.records_out;
        }
        return;
    }
    case TraceOpKind::Read:
    case TraceOpKind::Write:
    case TraceOpKind::RowOp:
        ++stats_.passthrough;
        out.push_back(in);
        ++stats_.records_out;
        return;
    }
    panic("cache filter: unreachable op kind ",
          int(static_cast<uint8_t>(in.kind)));
}

void
CacheFilter::run(TraceCursor &in, TraceWriter &out)
{
    TraceRecord record;
    std::vector<TraceRecord> emitted;
    while (in.next(record)) {
        emitted.clear();
        process(record, emitted);
        for (const TraceRecord &e : emitted)
            out.append(e);
    }
}

std::vector<TraceRecord>
CacheFilter::filter(const std::vector<TraceRecord> &in)
{
    std::vector<TraceRecord> out;
    out.reserve(in.size() / 4);
    for (const TraceRecord &record : in)
        process(record, out);
    return out;
}

std::vector<TraceRecord>
rawTraceFromWorkload(const Workload &workload, uint64_t addr_base)
{
    std::vector<TraceRecord> out;
    out.reserve(workload.ops.size());
    uint64_t tick = 0;
    for (const TraceOp &op : workload.ops) {
        TraceRecord r;
        r.tick = tick;
        r.origin = addr_base;
        switch (op.type) {
        case OpType::Compute:
            tick += op.count;
            continue;
        case OpType::Load:
            r.kind = TraceOpKind::Load;
            break;
        case OpType::Store:
            r.kind = TraceOpKind::Store;
            break;
        case OpType::Flush:
            r.kind = TraceOpKind::Flush;
            break;
        case OpType::DeallocRegion:
            // Deallocation is the paper campaigns' domain (row ops
            // through the core); the load/store front-end only
            // advances its clock past the region.
            tick += 1;
            continue;
        }
        r.addr = addr_base + op.addr;
        out.push_back(r);
        tick += 1;
    }
    return out;
}

} // namespace codic
