#include "trace/trace_io.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define CODIC_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace codic {

namespace {

// Fixed-width header/index integers are explicitly little-endian so
// a trace recorded on one host replays on any other.

void
putLe32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putLe64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Zigzag map so small negative deltas stay short varints. */
uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

constexpr uint64_t kFixedHeaderBytes = 56;
constexpr uint64_t kEpochEntryBytes = 24;
constexpr uint64_t kReleaseGranularity = 1u << 20;

} // namespace

const char *
traceOpKindName(TraceOpKind kind)
{
    switch (kind) {
    case TraceOpKind::Load: return "load";
    case TraceOpKind::Store: return "store";
    case TraceOpKind::Flush: return "flush";
    case TraceOpKind::Read: return "read";
    case TraceOpKind::Write: return "write";
    case TraceOpKind::RowOp: return "rowop";
    }
    return "?";
}

// --- TraceWriter ------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path, const TraceMeta &meta)
    : path_(path), meta_(meta)
{
    if (meta_.epoch_stride == 0)
        fatal("trace writer: epoch_stride must be >= 1");
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_)
        fatal("trace writer: cannot create '", path, "'");

    std::vector<uint8_t> header;
    header.insert(header.end(), kTraceMagic,
                  kTraceMagic + sizeof(kTraceMagic));
    putLe32(header, kTraceFormatVersion);
    header_bytes_ = static_cast<uint32_t>(
        kFixedHeaderBytes + meta_.scenario.size());
    putLe32(header, header_bytes_);
    putLe64(header, 0); // record_count, patched by finish().
    putLe64(header, 0); // index_offset, patched by finish().
    putLe64(header, 0); // max_addr, patched by finish().
    putLe64(header, meta_.seed);
    putLe32(header, meta_.epoch_stride);
    putLe32(header, static_cast<uint32_t>(meta_.scenario.size()));
    header.insert(header.end(), meta_.scenario.begin(),
                  meta_.scenario.end());
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    buffer_.reserve(1u << 16);
}

TraceWriter::~TraceWriter()
{
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; an explicit finish() call is
        // the place to observe write failures.
    }
}

void
TraceWriter::putVarint(uint64_t v)
{
    while (v >= 0x80) {
        putByte(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    putByte(static_cast<uint8_t>(v));
}

void
TraceWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
    out_.write(reinterpret_cast<const char *>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
}

void
TraceWriter::append(const TraceRecord &record)
{
    CODIC_ASSERT(!finished_);
    CODIC_ASSERT(static_cast<uint8_t>(record.kind) < kTraceOpKinds);
    if (record_count_ % meta_.epoch_stride == 0) {
        // Epoch boundary: reset delta state so the record is
        // self-contained, and remember where it starts.
        prev_tick_ = 0;
        prev_addr_ = 0;
        epochs_.push_back({header_bytes_ + payload_offset_,
                           record_count_, record.tick});
    }
    const size_t before = buffer_.size();
    putByte(static_cast<uint8_t>(record.kind));
    putVarint(zigzagEncode(
        static_cast<int64_t>(record.tick - prev_tick_)));
    putVarint(zigzagEncode(
        static_cast<int64_t>(record.addr - prev_addr_)));
    putVarint(record.origin);
    if (record.kind == TraceOpKind::RowOp) {
        putByte(record.mech);
        putVarint(zigzagEncode(record.reserved_row));
    }
    payload_offset_ += buffer_.size() - before;
    max_addr_ = std::max(max_addr_, record.addr);
    prev_tick_ = record.tick;
    prev_addr_ = record.addr;
    ++record_count_;
    if (buffer_.size() >= (1u << 16))
        flushBuffer();
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBuffer();

    const uint64_t index_offset = header_bytes_ + payload_offset_;
    std::vector<uint8_t> index;
    putLe64(index, static_cast<uint64_t>(epochs_.size()));
    for (const TraceEpoch &e : epochs_) {
        putLe64(index, e.file_offset);
        putLe64(index, e.start_record);
        putLe64(index, e.start_tick);
    }
    out_.write(reinterpret_cast<const char *>(index.data()),
               static_cast<std::streamsize>(index.size()));

    // Patch the counts the header had to leave blank.
    std::vector<uint8_t> patch;
    putLe64(patch, record_count_);
    putLe64(patch, index_offset);
    putLe64(patch, max_addr_);
    out_.seekp(16);
    out_.write(reinterpret_cast<const char *>(patch.data()),
               static_cast<std::streamsize>(patch.size()));
    out_.flush();
    if (!out_)
        fatal("trace writer: write to '", path_, "' failed");
    out_.close();
}

// --- TraceReader ------------------------------------------------------------

TraceReader::TraceReader(const std::string &path) : path_(path)
{
#ifdef CODIC_TRACE_HAVE_MMAP
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        fatal("trace reader: cannot open '", path, "'");
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fatal("trace reader: cannot stat '", path, "'");
    }
    size_ = static_cast<uint64_t>(st.st_size);
    if (size_ > 0) {
        void *map = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED,
                           fd_, 0);
        if (map == MAP_FAILED) {
            ::close(fd_);
            fatal("trace reader: mmap of '", path, "' failed");
        }
        data_ = static_cast<const uint8_t *>(map);
        // The cursor streams front to back; tell the pager.
        ::madvise(const_cast<uint8_t *>(data_), size_,
                  MADV_SEQUENTIAL);
    }
#else
    fatal("trace reader: mmap is not available on this platform");
#endif

    if (size_ < kFixedHeaderBytes)
        fatal("trace reader: '", path, "' is truncated (", size_,
              " bytes, smaller than the ", kFixedHeaderBytes,
              "-byte header)");
    if (std::memcmp(data_, kTraceMagic, sizeof(kTraceMagic)) != 0)
        fatal("trace reader: '", path,
              "' is not a CODIC trace (bad magic)");
    version_ = getLe32(data_ + 8);
    if (version_ != kTraceFormatVersion)
        fatal("trace reader: '", path, "' has format version ",
              version_, " but this build reads version ",
              kTraceFormatVersion,
              "; re-record the trace with this build");
    header_bytes_ = getLe32(data_ + 12);
    record_count_ = getLe64(data_ + 16);
    index_offset_ = getLe64(data_ + 24);
    max_addr_ = getLe64(data_ + 32);
    meta_.seed = getLe64(data_ + 40);
    meta_.epoch_stride = getLe32(data_ + 48);
    const uint32_t scenario_len = getLe32(data_ + 52);
    if (header_bytes_ != kFixedHeaderBytes + scenario_len ||
        header_bytes_ > size_)
        fatal("trace reader: '", path,
              "' header is inconsistent (truncated or corrupt)");
    meta_.scenario.assign(
        reinterpret_cast<const char *>(data_ + kFixedHeaderBytes),
        scenario_len);
    if (meta_.epoch_stride == 0)
        fatal("trace reader: '", path, "' has a zero epoch stride");

    // An unpatched index offset means the writer never finished -
    // the file is an aborted recording, not a trace.
    if (index_offset_ == 0)
        fatal("trace reader: '", path,
              "' was never finalized (recording aborted?)");
    if (index_offset_ < header_bytes_ ||
        index_offset_ + 8 > size_)
        fatal("trace reader: '", path,
              "' index offset is out of bounds (truncated file?)");
    const uint64_t epoch_count = getLe64(data_ + index_offset_);
    const uint64_t expected_epochs =
        (record_count_ + meta_.epoch_stride - 1) / meta_.epoch_stride;
    if (epoch_count != expected_epochs ||
        index_offset_ + 8 + epoch_count * kEpochEntryBytes > size_)
        fatal("trace reader: '", path,
              "' epoch index is truncated or corrupt");
    epochs_.reserve(epoch_count);
    for (uint64_t i = 0; i < epoch_count; ++i) {
        const uint8_t *p =
            data_ + index_offset_ + 8 + i * kEpochEntryBytes;
        TraceEpoch e;
        e.file_offset = getLe64(p);
        e.start_record = getLe64(p + 8);
        e.start_tick = getLe64(p + 16);
        if (e.file_offset < header_bytes_ ||
            e.file_offset > index_offset_ ||
            e.start_record != i * meta_.epoch_stride)
            fatal("trace reader: '", path,
                  "' epoch index entry ", i, " is corrupt");
        epochs_.push_back(e);
    }
}

TraceReader::~TraceReader()
{
#ifdef CODIC_TRACE_HAVE_MMAP
    if (data_)
        ::munmap(const_cast<uint8_t *>(data_), size_);
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

TraceCursor
TraceReader::cursor(bool streaming) const
{
    TraceCursor c(this, streaming);
    c.offset_ = header_bytes_;
    c.released_below_ = 0;
    return c;
}

TraceCursor
TraceReader::seekToRecord(uint64_t record_index) const
{
    if (record_index > record_count_)
        fatal("trace reader: seek to record ", record_index,
              " beyond the trace's ", record_count_, " records");
    // Seeks jump around; never a page-releasing cursor.
    TraceCursor c(this, false);
    if (epochs_.empty() || record_index == record_count_) {
        c.offset_ = index_offset_;
        c.record_index_ = record_count_;
        return c;
    }
    const size_t epoch = static_cast<size_t>(
        record_index / meta_.epoch_stride);
    c.moveToEpoch(epochs_[std::min(epoch, epochs_.size() - 1)]);
    TraceRecord skipped;
    while (c.record_index_ < record_index)
        c.next(skipped);
    return c;
}

TraceCursor
TraceReader::seekToTick(uint64_t tick) const
{
    // Last epoch whose first record is at or before `tick` (epoch
    // start ticks are non-decreasing for the monotone arrival
    // streams recording produces).
    TraceCursor c(this, false);
    if (epochs_.empty()) {
        c.offset_ = index_offset_;
        c.record_index_ = record_count_;
        return c;
    }
    size_t lo = 0;
    size_t hi = epochs_.size() - 1;
    while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (epochs_[mid].start_tick <= tick)
            lo = mid;
        else
            hi = mid - 1;
    }
    c.moveToEpoch(epochs_[lo]);
    return c;
}

std::string
TraceReader::describe() const
{
    std::string out;
    out += "trace: " + path_ + "\n";
    out += "format_version: " + std::to_string(version_) + "\n";
    out += "scenario: " +
           (meta_.scenario.empty() ? std::string("(unknown)")
                                   : meta_.scenario) +
           "\n";
    out += "seed: " + std::to_string(meta_.seed) + "\n";
    out += "records: " + std::to_string(record_count_) + "\n";
    out += "epochs: " + std::to_string(epochs_.size()) +
           " (stride " + std::to_string(meta_.epoch_stride) + ")\n";
    out += "file_bytes: " + std::to_string(size_) + "\n";
    out += "max_addr: " + std::to_string(max_addr_) + "\n";
    if (record_count_ > 0) {
        // First tick from the index; last by decoding the final
        // epoch (bounded by one stride, never the whole file).
        TraceCursor c = seekToRecord(
            (epochs_.size() - 1) * meta_.epoch_stride);
        TraceRecord r;
        uint64_t last_tick = epochs_.back().start_tick;
        uint64_t counts[kTraceOpKinds] = {};
        while (c.next(r))
            last_tick = std::max(last_tick, r.tick);
        TraceCursor all = cursor(false);
        while (all.next(r))
            ++counts[static_cast<size_t>(r.kind)];
        out += "first_tick: " +
               std::to_string(epochs_.front().start_tick) + "\n";
        out += "last_tick: " + std::to_string(last_tick) + "\n";
        out += "ops:";
        for (uint8_t k = 0; k < kTraceOpKinds; ++k)
            if (counts[k] > 0)
                out += std::string(" ") +
                       traceOpKindName(static_cast<TraceOpKind>(k)) +
                       "=" + std::to_string(counts[k]);
        out += "\n";
    }
    return out;
}

// --- TraceCursor ------------------------------------------------------------

void
TraceCursor::moveToEpoch(const TraceEpoch &epoch)
{
    offset_ = epoch.file_offset;
    record_index_ = epoch.start_record;
    prev_tick_ = 0;
    prev_addr_ = 0;
}

uint64_t
TraceCursor::getVarint()
{
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (offset_ >= reader_->index_offset_)
            fatal("trace reader: '", reader_->path_,
                  "' record stream ends mid-record (truncated or "
                  "corrupt trace)");
        const uint8_t b = reader_->data()[offset_++];
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            fatal("trace reader: '", reader_->path_,
                  "' contains an overlong varint (corrupt trace)");
    }
}

void
TraceCursor::releaseConsumedPages()
{
#ifdef CODIC_TRACE_HAVE_MMAP
    // Drop fully consumed pages so streaming a trace keeps resident
    // memory flat regardless of its length. The pages re-fault from
    // the file if another cursor (or a seek) revisits them.
    const uint64_t page = 4096;
    const uint64_t consumed = (offset_ / page) * page;
    if (consumed > released_below_ &&
        consumed - released_below_ >= kReleaseGranularity) {
        ::madvise(const_cast<uint8_t *>(reader_->data() +
                                        released_below_),
                  consumed - released_below_, MADV_DONTNEED);
        released_below_ = consumed;
    }
#endif
}

bool
TraceCursor::next(TraceRecord &record)
{
    if (record_index_ >= reader_->record_count_)
        return false;
    if (record_index_ % reader_->meta_.epoch_stride == 0) {
        prev_tick_ = 0;
        prev_addr_ = 0;
    }
    if (offset_ >= reader_->index_offset_)
        fatal("trace reader: '", reader_->path_,
              "' record stream is shorter than its header's record "
              "count (truncated trace)");
    const uint8_t kind = reader_->data()[offset_++];
    if (kind >= kTraceOpKinds)
        fatal("trace reader: '", reader_->path_,
              "' contains an unknown op kind ", int(kind),
              " (corrupt trace)");
    record.kind = static_cast<TraceOpKind>(kind);
    record.tick =
        prev_tick_ + static_cast<uint64_t>(zigzagDecode(getVarint()));
    record.addr =
        prev_addr_ + static_cast<uint64_t>(zigzagDecode(getVarint()));
    record.origin = getVarint();
    if (record.kind == TraceOpKind::RowOp) {
        if (offset_ >= reader_->index_offset_)
            fatal("trace reader: '", reader_->path_,
                  "' record stream ends mid-record (truncated or "
                  "corrupt trace)");
        record.mech = reader_->data()[offset_++];
        record.reserved_row = zigzagDecode(getVarint());
    } else {
        record.mech = 0;
        record.reserved_row = 0;
    }
    prev_tick_ = record.tick;
    prev_addr_ = record.addr;
    ++record_index_;
    if (streaming_)
        releaseConsumedPages();
    return true;
}

} // namespace codic
