/**
 * @file
 * Compact binary trace format for workload record/replay.
 *
 * The paper's CPU-side evaluation is driven by real Pin user-level
 * and Bochs full-system traces (Appendix A); this subsystem makes
 * every workload this repository runs a reproducible artifact of the
 * same shape. A trace is a stream of TraceRecords - operation kind,
 * byte address, absolute tick, origin tag - stored varint-delta
 * encoded (like EnrollmentStore records) behind a versioned magic
 * header, so a million-record trace costs a few bytes per record and
 * a file written by one run can be trusted by a later one: any
 * magic/version mismatch is rejected loudly instead of misparsed.
 *
 * Two trace levels share the format:
 *  - raw CPU-level traces (Load / Store / Flush): what a tracer in
 *    front of the cache hierarchy sees. CacheFilter turns these into
 *    the post-LLC level below, recording hit/miss/writeback stats.
 *  - DRAM-level traces (Read / Write / RowOp): the post-LLC miss
 *    stream a MemoryService actually schedules. TraceRecorder taps
 *    DramSystem::submit to capture one from any running scenario,
 *    and TraceReplaySource re-drives a MemoryService from one with
 *    the original inter-arrival timing.
 *
 * File layout (all fixed-width header/index integers little-endian):
 *
 *   offset  size  field
 *   0       8     magic "CODICTRC"
 *   8       4     u32 format version (kTraceFormatVersion)
 *   12      4     u32 header_bytes (file offset of the first record)
 *   16      8     u64 record_count   (patched by TraceWriter::finish)
 *   24      8     u64 index_offset   (patched by finish; 0 = none)
 *   32      8     u64 max_addr       (patched by finish; replay
 *                                     sizes its module to cover it)
 *   40      8     u64 seed           (provenance: generator seed)
 *   48      4     u32 epoch_stride   (records per epoch)
 *   52      4     u32 scenario_len
 *   56      n     scenario name     (provenance: generator scenario)
 *   ...           records
 *   index_offset: u64 epoch_count, then per epoch
 *                 {u64 file_offset, u64 start_record, u64 start_tick}
 *
 * Record encoding: u8 kind, zigzag-varint tick delta, zigzag-varint
 * address delta, varint origin; RowOp records append u8 mechanism
 * and a zigzag-varint reserved row. Delta state (previous tick and
 * address) resets to zero at every epoch boundary, so a reader can
 * jump to any index entry and decode forward without touching the
 * bytes before it - the seekable fast-forward the mmap reader
 * exposes.
 */

#ifndef CODIC_TRACE_TRACE_FORMAT_H
#define CODIC_TRACE_TRACE_FORMAT_H

#include <cstdint>
#include <string>

namespace codic {

/** Current on-disk trace format version. */
constexpr uint32_t kTraceFormatVersion = 1;

/** Magic bytes opening every trace file. */
constexpr char kTraceMagic[8] = {'C', 'O', 'D', 'I',
                                 'C', 'T', 'R', 'C'};

/** Records per epoch (delta-state reset + index granularity). */
constexpr uint32_t kDefaultEpochStride = 4096;

/** Kinds of trace operations (stable on-disk values). */
enum class TraceOpKind : uint8_t
{
    // CPU-level (pre-cache): what a Pin-style tracer records.
    Load = 0,  //!< 64 B line read at addr.
    Store = 1, //!< 64 B line write at addr.
    Flush = 2, //!< CLFLUSH of the line at addr.
    // DRAM-level (post-LLC): what a MemoryService schedules.
    Read = 3,  //!< One burst read transaction.
    Write = 4, //!< One burst write transaction.
    RowOp = 5, //!< Bulk row operation (mech + reserved row).
};

constexpr uint8_t kTraceOpKinds = 6;

/** Display name of a TraceOpKind. */
const char *traceOpKindName(TraceOpKind kind);

/** True for the CPU-level kinds a CacheFilter consumes. */
inline bool
isCpuLevel(TraceOpKind kind)
{
    return kind == TraceOpKind::Load || kind == TraceOpKind::Store ||
           kind == TraceOpKind::Flush;
}

/** One decoded trace operation. */
struct TraceRecord
{
    TraceOpKind kind = TraceOpKind::Read;
    uint64_t addr = 0;        //!< Physical byte address.
    uint64_t tick = 0;        //!< Absolute tick (DRAM cycles).
    uint64_t origin = 0;      //!< Issuer tag (never interpreted).
    uint8_t mech = 0;         //!< RowOp only: RowOpMechanism value.
    int64_t reserved_row = 0; //!< RowOp only: reserved zero row.

    bool operator==(const TraceRecord &) const = default;
};

/** Provenance carried in the trace header. */
struct TraceMeta
{
    std::string scenario; //!< Generator scenario ("" = unknown).
    uint64_t seed = 0;    //!< Generator campaign seed.
    uint32_t epoch_stride = kDefaultEpochStride;
};

} // namespace codic

#endif // CODIC_TRACE_TRACE_FORMAT_H
