/**
 * @file
 * Trace replay: drives a MemoryService's async submit/completionOf
 * API from a DRAM-level trace with the original inter-arrival
 * timing (optionally rescaled), closing the record -> replay loop:
 * a trace captured by TraceRecorder from any scenario re-runs as a
 * first-class workload on any DramSystem/scheduler configuration.
 *
 * Replay semantics per record kind:
 *  - Read: submitted at its (rescaled) arrival and resolved through
 *    a bounded in-flight window, so memory stays O(window) while
 *    the scheduler still sees a deep queue; per-read latency
 *    (completion - arrival) is reported.
 *  - Write: fire-and-forget (submit + retire), buffered and drained
 *    by the SchedulerPolicy under study.
 *  - RowOp: submitted and resolved in place (bulk row operations
 *    are blocking in every campaign that issues them).
 *
 * Raw CPU-level records (Load/Store/Flush) are rejected loudly:
 * replay needs a DRAM-level trace - run the CacheFilter first, or
 * record with --record-trace (which taps post-LLC submissions).
 */

#ifndef CODIC_TRACE_REPLAY_H
#define CODIC_TRACE_REPLAY_H

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/service.h"
#include "trace/trace_format.h"

namespace codic {

class TraceCursor;

/** Replay tuning. */
struct ReplayOptions
{
    /**
     * Inter-arrival rescale: arrival deltas divide by this, so
     * speed > 1 compresses the trace in time (more pressure on the
     * scheduler) and speed < 1 stretches it. Must be > 0.
     */
    double speed = 1.0;

    /** Bound on unresolved read tickets held at once. */
    int max_inflight_reads = 64;
};

/** Outcome of one replay. */
struct ReplayReport
{
    uint64_t records = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowops = 0;
    Cycle first_arrival = 0;
    Cycle last_arrival = 0;
    Cycle makespan = 0; //!< Quiescence cycle after the final drain.
    std::vector<Cycle> read_latencies; //!< completion - arrival.
};

/** One replay run over a MemoryService. */
class TraceReplaySource
{
  public:
    TraceReplaySource(MemoryService &mem,
                      const ReplayOptions &options = {});

    /** Feed one record. @throws FatalError on a CPU-level record. */
    void step(const TraceRecord &record);

    /** Feed a whole reader stream. */
    void play(TraceCursor &cursor);

    /** Feed an in-memory record vector. */
    void play(const std::vector<TraceRecord> &records);

    /**
     * Resolve outstanding reads, drain buffered writes, and return
     * the report. Idempotent per source instance.
     */
    ReplayReport finish();

  private:
    Cycle arrivalOf(uint64_t tick);
    void resolveOldestRead();

    MemoryService &mem_;
    ReplayOptions options_;
    ReplayReport report_;
    bool have_base_ = false;
    uint64_t base_tick_ = 0;
    bool finished_ = false;

    struct PendingRead
    {
        Ticket ticket;
        Cycle arrival;
    };
    std::deque<PendingRead> inflight_;
};

} // namespace codic

#endif // CODIC_TRACE_REPLAY_H
