/**
 * @file
 * Trace serialization: a buffered TraceWriter and an mmap-backed
 * streaming TraceReader over the format in trace_format.h.
 *
 * The reader maps the file read-only and decodes records on demand
 * through a cursor, so memory stays O(1) in the trace length: as the
 * cursor streams forward it releases the pages it has fully consumed
 * (madvise(MADV_DONTNEED)), keeping resident memory flat across a
 * 10^7-record trace. The epoch index in the file footer makes
 * seekToRecord / seekToTick a binary search plus a bounded forward
 * decode instead of a scan from byte zero.
 *
 * Both ends are loud about corruption: bad magic, a format-version
 * mismatch, a truncated header or record stream, and an
 * out-of-bounds index all raise FatalError with an actionable
 * message (never a misparse).
 */

#ifndef CODIC_TRACE_TRACE_IO_H
#define CODIC_TRACE_TRACE_IO_H

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.h"

namespace codic {

/** One footer-index entry (epoch start). */
struct TraceEpoch
{
    uint64_t file_offset = 0;  //!< First record byte of the epoch.
    uint64_t start_record = 0; //!< Record index of that record.
    uint64_t start_tick = 0;   //!< Absolute tick of that record.
};

/**
 * Streaming trace writer. Records append in call order; finish()
 * (or the destructor) writes the epoch index and patches the header
 * counts. Output is a pure function of (meta, record sequence), so
 * rewriting a decoded trace reproduces the input byte-for-byte.
 */
class TraceWriter
{
  public:
    /** @throws FatalError when the file cannot be created. */
    TraceWriter(const std::string &path, const TraceMeta &meta);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (ticks need not be monotone). */
    void append(const TraceRecord &record);

    /** Records appended so far. */
    uint64_t recordCount() const { return record_count_; }

    /**
     * Flush buffered records, write the epoch index, and patch the
     * header. Idempotent; run by the destructor if not called.
     * @throws FatalError when the filesystem write fails.
     */
    void finish();

  private:
    void putByte(uint8_t b) { buffer_.push_back(b); }
    void putVarint(uint64_t v);
    void flushBuffer();

    std::string path_;
    std::ofstream out_;
    TraceMeta meta_;
    std::vector<uint8_t> buffer_;
    std::vector<TraceEpoch> epochs_;
    uint64_t max_addr_ = 0;
    uint64_t record_count_ = 0;
    uint64_t payload_offset_ = 0; //!< Bytes of records written+buffered.
    uint32_t header_bytes_ = 0;
    uint64_t prev_tick_ = 0;
    uint64_t prev_addr_ = 0;
    bool finished_ = false;
};

class TraceReader;

/**
 * Streaming decode position inside a mapped trace. Cursors are
 * cheap; several can stream one reader concurrently (the reader is
 * immutable after construction), but page releases only happen on
 * the cursor the reader handed out with streaming = true.
 */
class TraceCursor
{
  public:
    /**
     * Decode the next record. @return false at end of trace.
     * @throws FatalError when the stream ends mid-record (truncated
     *         or corrupt file).
     */
    bool next(TraceRecord &record);

    /** Index of the record next() will produce. */
    uint64_t position() const { return record_index_; }

  private:
    friend class TraceReader;

    TraceCursor(const TraceReader *reader, bool streaming)
        : reader_(reader), streaming_(streaming)
    {
    }

    void moveToEpoch(const TraceEpoch &epoch);
    uint64_t getVarint();
    void releaseConsumedPages();

    const TraceReader *reader_ = nullptr;
    uint64_t offset_ = 0;       //!< Next undecoded byte.
    uint64_t record_index_ = 0; //!< Next record's index.
    uint64_t prev_tick_ = 0;
    uint64_t prev_addr_ = 0;
    bool streaming_ = false;
    uint64_t released_below_ = 0; //!< Pages below this are dropped.
};

/**
 * mmap-backed trace reader: validates the header eagerly, decodes
 * records lazily. The mapping is read-only and shared, so a reader
 * never copies the file; a cursor() streams it front to back in
 * O(1) resident memory, and seek uses the epoch index.
 */
class TraceReader
{
  public:
    /**
     * Map and validate a trace file.
     * @throws FatalError on open/map failure, bad magic, version
     *         mismatch, or a header/index that overruns the file.
     */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Header provenance (scenario, seed, epoch stride). */
    const TraceMeta &meta() const { return meta_; }

    /** On-disk format version (always kTraceFormatVersion today). */
    uint32_t version() const { return version_; }

    /** Records in the trace. */
    uint64_t recordCount() const { return record_count_; }

    /**
     * Highest byte address any record touches (0 for an empty
     * trace): replay sizes its DRAM module to cover it, so a trace
     * recorded on a large module replays without address faults.
     */
    uint64_t maxAddr() const { return max_addr_; }

    /** Total file size in bytes. */
    uint64_t fileBytes() const { return size_; }

    /** The footer epoch index (one entry per epoch). */
    const std::vector<TraceEpoch> &epochs() const { return epochs_; }

    /**
     * Cursor at record 0. With streaming = true the cursor releases
     * fully consumed pages as it advances (flat RSS on end-to-end
     * streams); seeks backwards re-fault them transparently.
     */
    TraceCursor cursor(bool streaming = true) const;

    /**
     * Cursor positioned at `record_index` via the epoch index:
     * O(log epochs) search + at most one epoch of forward decode.
     * @throws FatalError when record_index > recordCount().
     */
    TraceCursor seekToRecord(uint64_t record_index) const;

    /**
     * Cursor at the first record of the last epoch whose start tick
     * is <= `tick` (fast-forward; records before it are skipped).
     */
    TraceCursor seekToTick(uint64_t tick) const;

    /** Human-readable header summary (codic_run --trace-info). */
    std::string describe() const;

  private:
    friend class TraceCursor;

    const uint8_t *data() const { return data_; }

    std::string path_;
    const uint8_t *data_ = nullptr;
    uint64_t size_ = 0;
    int fd_ = -1;

    uint32_t version_ = 0;
    uint32_t header_bytes_ = 0;
    uint64_t record_count_ = 0;
    uint64_t max_addr_ = 0;
    uint64_t index_offset_ = 0;
    TraceMeta meta_;
    std::vector<TraceEpoch> epochs_;
};

} // namespace codic

#endif // CODIC_TRACE_TRACE_IO_H
