/**
 * @file
 * Cache-filtering front-end for trace ingestion: converts a raw
 * CPU-level load/store/flush stream into the post-LLC miss trace a
 * MemoryService actually schedules, using the same set-associative
 * write-back cache model the trace-driven cores run on
 * (sim/cache.h).
 *
 * This mirrors the phobos tracer architecture the ROADMAP names:
 * the tracer records every user-level memory reference, and a
 * cache-filter pass keeps only the references that miss a modeled
 * LLC - plus the dirty writebacks those misses evict - so the DRAM
 * trace is orders of magnitude smaller than the raw one and replays
 * in DRAM time, not CPU time.
 *
 * Filter semantics (write-allocate, write-back):
 *  - Load hit / store hit: absorbed (no DRAM traffic).
 *  - Load or store miss: one DRAM Read at the record's tick (the
 *    line fetch; stores dirty the line after the fetch).
 *  - Dirty victim eviction: one DRAM Write of the victim line.
 *  - Flush of a dirty line: one DRAM Write; clean or absent: no
 *    traffic.
 *  - Already-DRAM-level records (Read/Write/RowOp) pass through
 *    unchanged, so a filtered trace can be filtered again
 *    idempotently.
 */

#ifndef CODIC_TRACE_CACHE_FILTER_H
#define CODIC_TRACE_CACHE_FILTER_H

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "sim/trace.h"
#include "trace/trace_format.h"

namespace codic {

class TraceCursor;
class TraceWriter;

/** Modeled LLC in front of the DRAM trace. */
struct CacheFilterConfig
{
    uint64_t llc_bytes = 2ull << 20; //!< Capacity (paper: 2 MB LLC).
    int ways = 16;
    int line_bytes = 64;
};

/** Ingestion statistics of one filter pass. */
struct CacheFilterStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t flushes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;   //!< Dirty evictions + dirty flushes.
    uint64_t passthrough = 0;  //!< DRAM-level records kept as-is.
    uint64_t records_in = 0;
    uint64_t records_out = 0;

    /** Fraction of CPU-level accesses absorbed by the cache. */
    double hitRate() const
    {
        const uint64_t accesses = loads + stores;
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Streaming raw-trace -> DRAM-trace converter. */
class CacheFilter
{
  public:
    explicit CacheFilter(const CacheFilterConfig &config);

    /**
     * Filter one record: appends zero or more DRAM-level records to
     * `out` (not cleared). Emitted records carry the input's tick
     * and origin; a victim writeback carries the victim line's
     * address.
     */
    void process(const TraceRecord &in, std::vector<TraceRecord> &out);

    /** Run a whole trace stream through the filter into a writer. */
    void run(TraceCursor &in, TraceWriter &out);

    /** Filter an in-memory record vector. */
    std::vector<TraceRecord>
    filter(const std::vector<TraceRecord> &in);

    const CacheFilterConfig &config() const { return config_; }
    const CacheFilterStats &stats() const { return stats_; }

  private:
    CacheFilterConfig config_;
    Cache llc_;
    CacheFilterStats stats_;
};

/**
 * Raw CPU-level records synthesized from a phased Workload
 * (sim/workloads.h): Load/Store/Flush ops become records at a tick
 * clock that advances one tick per memory op and `count` ticks per
 * Compute op, offset by `addr_base` so multi-workload traces keep
 * private regions; the workload's DeallocRegion ops are outside the
 * load/store stream this front-end studies and only advance the
 * clock. The record origin is `addr_base` (the convention
 * InOrderCore uses for its transactions).
 */
std::vector<TraceRecord>
rawTraceFromWorkload(const Workload &workload, uint64_t addr_base = 0);

} // namespace codic

#endif // CODIC_TRACE_CACHE_FILTER_H
