#include "trace/replay.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "trace/trace_io.h"

namespace codic {

TraceReplaySource::TraceReplaySource(MemoryService &mem,
                                     const ReplayOptions &options)
    : mem_(mem), options_(options)
{
    if (!(options_.speed > 0.0) || std::isinf(options_.speed))
        fatal("trace replay: speed must be finite and > 0, got ",
              options_.speed);
    if (options_.max_inflight_reads < 1)
        fatal("trace replay: max_inflight_reads must be >= 1, got ",
              options_.max_inflight_reads);
}

Cycle
TraceReplaySource::arrivalOf(uint64_t tick)
{
    if (!have_base_) {
        have_base_ = true;
        base_tick_ = tick;
        report_.first_arrival = static_cast<Cycle>(tick);
    }
    // Rescale inter-arrival time from the trace's first record, so
    // the trace starts where it started and speed compresses or
    // stretches everything after it. Pure function of (tick, speed):
    // replays are deterministic.
    const int64_t delta =
        static_cast<int64_t>(tick - base_tick_); // May be negative.
    const Cycle arrival =
        static_cast<Cycle>(base_tick_) +
        static_cast<Cycle>(std::llround(
            static_cast<double>(delta) / options_.speed));
    return std::max<Cycle>(0, arrival);
}

void
TraceReplaySource::resolveOldestRead()
{
    const PendingRead oldest = inflight_.front();
    inflight_.pop_front();
    const Cycle done = mem_.completionOf(oldest.ticket);
    report_.makespan = std::max(report_.makespan, done);
    report_.read_latencies.push_back(done - oldest.arrival);
}

void
TraceReplaySource::step(const TraceRecord &record)
{
    CODIC_ASSERT(!finished_);
    if (isCpuLevel(record.kind))
        fatal("trace replay: record ", report_.records, " is a ",
              traceOpKindName(record.kind),
              " (raw CPU-level trace); replay needs a DRAM-level "
              "trace - run the cache filter first or record one "
              "with --record-trace");
    const Cycle arrival = arrivalOf(record.tick);
    report_.last_arrival = std::max(report_.last_arrival, arrival);
    ++report_.records;
    switch (record.kind) {
    case TraceOpKind::Read: {
        ++report_.reads;
        const Ticket t = mem_.submit(
            MemTransaction::makeRead(record.addr, arrival,
                                     record.origin));
        inflight_.push_back({t, arrival});
        if (static_cast<int>(inflight_.size()) >
            options_.max_inflight_reads)
            resolveOldestRead();
        break;
    }
    case TraceOpKind::Write: {
        ++report_.writes;
        const Ticket t = mem_.submit(
            MemTransaction::makeWrite(record.addr, arrival,
                                      record.origin));
        mem_.retire(t);
        break;
    }
    case TraceOpKind::RowOp: {
        ++report_.rowops;
        const Cycle done = mem_.completionOf(mem_.submit(
            MemTransaction::makeRowOp(
                record.addr, arrival,
                static_cast<RowOpMechanism>(record.mech),
                record.reserved_row, record.origin)));
        report_.makespan = std::max(report_.makespan, done);
        break;
    }
    default:
        break; // isCpuLevel() already rejected the rest.
    }
}

void
TraceReplaySource::play(TraceCursor &cursor)
{
    TraceRecord record;
    while (cursor.next(record))
        step(record);
}

void
TraceReplaySource::play(const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &record : records)
        step(record);
}

ReplayReport
TraceReplaySource::finish()
{
    if (!finished_) {
        finished_ = true;
        while (!inflight_.empty())
            resolveOldestRead();
        report_.makespan =
            std::max(report_.makespan, mem_.drainAll());
    }
    return report_;
}

} // namespace codic
