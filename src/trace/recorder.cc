#include "trace/recorder.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "trace/trace_io.h"

namespace codic {

namespace {

std::mutex recorder_mutex;
std::unique_ptr<TraceWriter> recorder_writer;
// The hot-path gate: submit() reads this without the mutex.
std::atomic<bool> recorder_active{false};

TraceRecord
recordOf(const MemTransaction &txn)
{
    TraceRecord r;
    switch (txn.kind) {
    case TxnKind::Read: r.kind = TraceOpKind::Read; break;
    case TxnKind::Write: r.kind = TraceOpKind::Write; break;
    case TxnKind::RowOp: r.kind = TraceOpKind::RowOp; break;
    }
    r.addr = txn.addr;
    r.tick = static_cast<uint64_t>(txn.arrival);
    r.origin = txn.origin;
    if (txn.kind == TxnKind::RowOp) {
        r.mech = static_cast<uint8_t>(txn.mech);
        r.reserved_row = txn.reserved_row;
    }
    return r;
}

} // namespace

void
TraceRecorder::start(const std::string &path, const TraceMeta &meta)
{
    std::lock_guard<std::mutex> lock(recorder_mutex);
    if (recorder_writer)
        fatal("trace recorder: a recording is already active");
    recorder_writer = std::make_unique<TraceWriter>(path, meta);
    recorder_active.store(true, std::memory_order_release);
}

uint64_t
TraceRecorder::stop()
{
    std::lock_guard<std::mutex> lock(recorder_mutex);
    if (!recorder_writer)
        return 0;
    recorder_active.store(false, std::memory_order_release);
    const uint64_t count = recorder_writer->recordCount();
    recorder_writer->finish();
    recorder_writer.reset();
    return count;
}

bool
TraceRecorder::active()
{
    return recorder_active.load(std::memory_order_relaxed);
}

void
TraceRecorder::tap(const MemTransaction &txn)
{
    std::lock_guard<std::mutex> lock(recorder_mutex);
    // start()/stop() race benignly with the unlocked active() check;
    // re-check under the lock.
    if (!recorder_writer)
        return;
    recorder_writer->append(recordOf(txn));
}

} // namespace codic
