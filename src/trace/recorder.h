/**
 * @file
 * Process-wide trace recorder: a tap on DramSystem::submit that
 * captures every submitted transaction into a trace file, so ANY
 * registered scenario can be re-run with `codic_run --record-trace
 * FILE` to produce a reproducible DRAM-level trace - no per-scenario
 * plumbing required.
 *
 * The tap is designed to be free when off: DramSystem::submit checks
 * one relaxed atomic pointer and branches away. When on, records
 * append under a mutex in submission order, so a recording made at
 * --threads 1 is byte-deterministic; recordings of multi-threaded
 * campaigns interleave the worker threads' submissions in wall-clock
 * order and are reproducible runs but not byte-stable files (the
 * trace smoke records at --threads 1 for exactly this reason).
 */

#ifndef CODIC_TRACE_RECORDER_H
#define CODIC_TRACE_RECORDER_H

#include <string>

#include "mem/transaction.h"
#include "trace/trace_format.h"

namespace codic {

/** Static facade over the process-wide recording tap. */
class TraceRecorder
{
  public:
    /**
     * Open a recording into `path`. @throws FatalError when a
     * recording is already active or the file cannot be created.
     */
    static void start(const std::string &path, const TraceMeta &meta);

    /**
     * Finish the active recording (writes the epoch index, patches
     * the header) and return the record count. No-op returning 0
     * when no recording is active.
     */
    static uint64_t stop();

    /** Cheap check compiled into the DramSystem::submit hot path. */
    static bool active();

    /** Append one submitted transaction (no-op when inactive). */
    static void tap(const MemTransaction &txn);
};

} // namespace codic

#endif // CODIC_TRACE_RECORDER_H
