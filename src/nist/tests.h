/**
 * @file
 * The 15 statistical tests of NIST SP 800-22 Rev 1a [123], used by
 * the paper (Section 6.1.3 / Appendix B, Table 10) to validate the
 * randomness of CODIC-sig signatures.
 *
 * Each test maps a bit stream to one or more p-values; following the
 * standard, a stream passes a test when its (worst) p-value is at
 * least 0.01. Tests that are inapplicable to a stream (too short, or
 * too few random-walk cycles for the excursion tests) report
 * applicable = false and are conventionally counted as neither pass
 * nor fail.
 */

#ifndef CODIC_NIST_TESTS_H
#define CODIC_NIST_TESTS_H

#include <cstdint>
#include <string>
#include <vector>

namespace codic {

/** Outcome of one NIST test on one stream. */
struct NistResult
{
    std::string name;       //!< Test name (Table 10 spelling).
    double p_value = 0.0;   //!< Worst p-value over sub-results.
    bool applicable = true; //!< False if preconditions unmet.

    /** Pass at the standard alpha = 0.01. */
    bool pass() const { return !applicable || p_value >= 0.01; }
};

/** Bits are uint8_t values 0/1. */
using BitStream = std::vector<uint8_t>;

NistResult nistMonobit(const BitStream &bits);
NistResult nistFrequencyWithinBlock(const BitStream &bits,
                                    int block_len = 128);
NistResult nistRuns(const BitStream &bits);
NistResult nistLongestRunOnesInBlock(const BitStream &bits);
NistResult nistBinaryMatrixRank(const BitStream &bits);
NistResult nistDft(const BitStream &bits);
NistResult nistNonOverlappingTemplate(const BitStream &bits);
NistResult nistOverlappingTemplate(const BitStream &bits);
NistResult nistMaurersUniversal(const BitStream &bits);
NistResult nistLinearComplexity(const BitStream &bits,
                                int block_len = 500);
NistResult nistSerial(const BitStream &bits, int m = 16);
NistResult nistApproximateEntropy(const BitStream &bits, int m = 10);
NistResult nistCumulativeSums(const BitStream &bits);
NistResult nistRandomExcursion(const BitStream &bits);
NistResult nistRandomExcursionVariant(const BitStream &bits);

/** Run the full 15-test suite (Table 10 order). */
std::vector<NistResult> runNistSuite(const BitStream &bits);

/** True if every applicable test passed. */
bool allPass(const std::vector<NistResult> &results);

} // namespace codic

#endif // CODIC_NIST_TESTS_H
