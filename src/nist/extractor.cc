#include "nist/extractor.h"

#include <cstddef>

namespace codic {

std::vector<uint8_t>
vonNeumannExtract(const std::vector<uint8_t> &raw)
{
    std::vector<uint8_t> out;
    out.reserve(raw.size() / 4);
    for (size_t i = 0; i + 1 < raw.size(); i += 2) {
        const uint8_t a = raw[i];
        const uint8_t b = raw[i + 1];
        if (a != b)
            out.push_back(a);
    }
    return out;
}

double
onesFraction(const std::vector<uint8_t> &bits)
{
    if (bits.empty())
        return 0.0;
    size_t ones = 0;
    for (uint8_t b : bits)
        ones += b;
    return static_cast<double>(ones) / static_cast<double>(bits.size());
}

} // namespace codic
