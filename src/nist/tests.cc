#include "nist/tests.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <map>

#include "common/logging.h"
#include "nist/special_functions.h"

namespace codic {

namespace {

double
minPositive(std::vector<double> ps)
{
    double m = 1.0;
    for (double p : ps)
        m = std::min(m, p);
    return m;
}

/** In-place iterative radix-2 FFT (size must be a power of two). */
void
fft(std::vector<std::complex<double>> &a)
{
    const size_t n = a.size();
    CODIC_ASSERT((n & (n - 1)) == 0);
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        const double ang = -2.0 * M_PI / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t k = 0; k < len / 2; ++k) {
                const auto u = a[i + k];
                const auto v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

} // namespace

NistResult
nistMonobit(const BitStream &bits)
{
    NistResult r{"monobit", 0.0, true};
    const double n = static_cast<double>(bits.size());
    if (bits.empty()) {
        r.applicable = false;
        return r;
    }
    double s = 0.0;
    for (uint8_t b : bits)
        s += b ? 1.0 : -1.0;
    r.p_value = std::erfc(std::fabs(s) / std::sqrt(2.0 * n));
    return r;
}

NistResult
nistFrequencyWithinBlock(const BitStream &bits, int block_len)
{
    NistResult r{"frequency_within_block", 0.0, true};
    const size_t m = static_cast<size_t>(block_len);
    const size_t blocks = bits.size() / m;
    if (blocks == 0) {
        r.applicable = false;
        return r;
    }
    double chi2 = 0.0;
    for (size_t i = 0; i < blocks; ++i) {
        size_t ones = 0;
        for (size_t j = 0; j < m; ++j)
            ones += bits[i * m + j];
        const double pi =
            static_cast<double>(ones) / static_cast<double>(m);
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * static_cast<double>(m);
    r.p_value = igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
    return r;
}

NistResult
nistRuns(const BitStream &bits)
{
    NistResult r{"runs", 0.0, true};
    const double n = static_cast<double>(bits.size());
    if (bits.size() < 100) {
        r.applicable = false;
        return r;
    }
    size_t ones = 0;
    for (uint8_t b : bits)
        ones += b;
    const double pi = static_cast<double>(ones) / n;
    // Frequency pre-test.
    if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(n)) {
        r.p_value = 0.0;
        return r;
    }
    double vobs = 1.0;
    for (size_t i = 1; i < bits.size(); ++i)
        if (bits[i] != bits[i - 1])
            vobs += 1.0;
    const double num = std::fabs(vobs - 2.0 * n * pi * (1.0 - pi));
    const double den = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi);
    r.p_value = std::erfc(num / den);
    return r;
}

NistResult
nistLongestRunOnesInBlock(const BitStream &bits)
{
    NistResult r{"longest_run_ones_in_a_block", 0.0, true};
    const size_t n = bits.size();
    size_t m;
    std::vector<int> v_edges;
    std::vector<double> pi;
    if (n < 128) {
        r.applicable = false;
        return r;
    } else if (n < 6272) {
        m = 8;
        v_edges = {1, 2, 3, 4};
        pi = {0.21484375, 0.3671875, 0.23046875, 0.1875};
    } else if (n < 750000) {
        m = 128;
        v_edges = {4, 5, 6, 7, 8, 9};
        pi = {0.1174035788, 0.242955959, 0.249363483,
              0.17517706,   0.102701071, 0.112398847};
    } else {
        m = 10000;
        v_edges = {10, 11, 12, 13, 14, 15, 16};
        pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    }
    const size_t blocks = n / m;
    std::vector<double> v(pi.size(), 0.0);
    for (size_t i = 0; i < blocks; ++i) {
        int longest = 0;
        int run = 0;
        for (size_t j = 0; j < m; ++j) {
            if (bits[i * m + j]) {
                ++run;
                longest = std::max(longest, run);
            } else {
                run = 0;
            }
        }
        size_t cat = 0;
        while (cat + 1 < pi.size() &&
               longest > v_edges[cat])
            ++cat;
        if (longest <= v_edges.front())
            cat = 0;
        ++v[cat];
    }
    double chi2 = 0.0;
    const double nb = static_cast<double>(blocks);
    for (size_t k = 0; k < pi.size(); ++k) {
        const double expect = nb * pi[k];
        chi2 += (v[k] - expect) * (v[k] - expect) / expect;
    }
    r.p_value = igamc(static_cast<double>(pi.size() - 1) / 2.0,
                      chi2 / 2.0);
    return r;
}

NistResult
nistBinaryMatrixRank(const BitStream &bits)
{
    NistResult r{"binary_matrix_rank", 0.0, true};
    constexpr size_t kM = 32;
    constexpr size_t kQ = 32;
    const size_t matrices = bits.size() / (kM * kQ);
    if (matrices < 38) { // NIST requires n >= 38*M*Q.
        r.applicable = false;
        return r;
    }
    size_t full = 0;
    size_t full_m1 = 0;
    for (size_t m = 0; m < matrices; ++m) {
        // Rows as 32-bit words.
        std::array<uint32_t, kM> rows{};
        for (size_t i = 0; i < kM; ++i) {
            uint32_t w = 0;
            for (size_t j = 0; j < kQ; ++j)
                w |= static_cast<uint32_t>(
                         bits[m * kM * kQ + i * kQ + j])
                     << j;
            rows[i] = w;
        }
        // Gaussian elimination over GF(2).
        int rank = 0;
        for (int col = 0; col < static_cast<int>(kQ); ++col) {
            int pivot = -1;
            for (int i = rank; i < static_cast<int>(kM); ++i) {
                if ((rows[static_cast<size_t>(i)] >> col) & 1u) {
                    pivot = i;
                    break;
                }
            }
            if (pivot < 0)
                continue;
            std::swap(rows[static_cast<size_t>(pivot)],
                      rows[static_cast<size_t>(rank)]);
            for (int i = 0; i < static_cast<int>(kM); ++i) {
                if (i != rank && ((rows[static_cast<size_t>(i)] >> col) &
                                  1u))
                    rows[static_cast<size_t>(i)] ^=
                        rows[static_cast<size_t>(rank)];
            }
            ++rank;
        }
        if (rank == static_cast<int>(kM))
            ++full;
        else if (rank == static_cast<int>(kM) - 1)
            ++full_m1;
    }
    const double nm = static_cast<double>(matrices);
    const double p_full = 0.2888;
    const double p_m1 = 0.5776;
    const double p_rest = 0.1336;
    const double rest =
        nm - static_cast<double>(full) - static_cast<double>(full_m1);
    double chi2 =
        std::pow(static_cast<double>(full) - p_full * nm, 2) /
            (p_full * nm) +
        std::pow(static_cast<double>(full_m1) - p_m1 * nm, 2) /
            (p_m1 * nm) +
        std::pow(rest - p_rest * nm, 2) / (p_rest * nm);
    r.p_value = std::exp(-chi2 / 2.0);
    return r;
}

NistResult
nistDft(const BitStream &bits)
{
    NistResult r{"dft", 0.0, true};
    // Use the largest power-of-two prefix (radix-2 FFT).
    size_t n = 1;
    while (n * 2 <= bits.size())
        n *= 2;
    if (n < 1024) {
        r.applicable = false;
        return r;
    }
    std::vector<std::complex<double>> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = bits[i] ? 1.0 : -1.0;
    fft(x);
    const double nd = static_cast<double>(n);
    const double threshold = std::sqrt(std::log(1.0 / 0.05) * nd);
    const double n0 = 0.95 * nd / 2.0;
    double n1 = 0.0;
    for (size_t i = 0; i < n / 2; ++i)
        if (std::abs(x[i]) < threshold)
            n1 += 1.0;
    const double d =
        (n1 - n0) / std::sqrt(nd * 0.95 * 0.05 / 4.0);
    r.p_value = std::erfc(std::fabs(d) / std::sqrt(2.0));
    return r;
}

NistResult
nistNonOverlappingTemplate(const BitStream &bits)
{
    NistResult r{"non_overlapping_template_matching", 0.0, true};
    constexpr int kTemplateLen = 9;
    // The canonical aperiodic template 000000001.
    constexpr uint32_t kTemplate = 0x100; // bit8..bit0 = 1 0000 0000
    const size_t blocks_n = 8;
    const size_t m = bits.size() / blocks_n;
    if (m < 100) {
        r.applicable = false;
        return r;
    }
    const double md = static_cast<double>(m);
    const double mu =
        (md - kTemplateLen + 1.0) / std::pow(2.0, kTemplateLen);
    const double sigma2 =
        md * (1.0 / std::pow(2.0, kTemplateLen) -
              (2.0 * kTemplateLen - 1.0) /
                  std::pow(2.0, 2.0 * kTemplateLen));
    double chi2 = 0.0;
    for (size_t b = 0; b < blocks_n; ++b) {
        size_t count = 0;
        size_t i = 0;
        while (i + kTemplateLen <= m) {
            uint32_t w = 0;
            for (int j = 0; j < kTemplateLen; ++j)
                w = (w << 1) |
                    bits[b * m + i + static_cast<size_t>(j)];
            if (w == kTemplate) {
                ++count;
                i += kTemplateLen;
            } else {
                ++i;
            }
        }
        chi2 += std::pow(static_cast<double>(count) - mu, 2) / sigma2;
    }
    r.p_value = igamc(static_cast<double>(blocks_n) / 2.0, chi2 / 2.0);
    return r;
}

NistResult
nistOverlappingTemplate(const BitStream &bits)
{
    NistResult r{"overlapping_template_matching", 0.0, true};
    constexpr int kTemplateLen = 9;
    constexpr size_t kM = 1032;
    constexpr int kK = 5;
    const size_t blocks = bits.size() / kM;
    if (blocks < 5) {
        r.applicable = false;
        return r;
    }
    // NIST SP 800-22 Rev 1a probabilities for m=9, M=1032.
    static const double pi[kK + 1] = {0.364091, 0.185659, 0.139381,
                                      0.100571, 0.070432, 0.139865};
    std::array<double, kK + 1> v{};
    for (size_t b = 0; b < blocks; ++b) {
        int count = 0;
        for (size_t i = 0; i + kTemplateLen <= kM; ++i) {
            bool match = true;
            for (int j = 0; j < kTemplateLen; ++j) {
                if (!bits[b * kM + i + static_cast<size_t>(j)]) {
                    match = false;
                    break;
                }
            }
            if (match)
                ++count;
        }
        ++v[static_cast<size_t>(std::min(count, kK))];
    }
    const double nb = static_cast<double>(blocks);
    double chi2 = 0.0;
    for (int k = 0; k <= kK; ++k) {
        const double expect = nb * pi[k];
        chi2 += std::pow(v[static_cast<size_t>(k)] - expect, 2) / expect;
    }
    r.p_value = igamc(static_cast<double>(kK) / 2.0, chi2 / 2.0);
    return r;
}

NistResult
nistMaurersUniversal(const BitStream &bits)
{
    NistResult r{"maurers_universal", 0.0, true};
    // (L, expectedValue, variance) per SP 800-22 Table in 2.9.
    struct Row
    {
        int l;
        size_t min_n;
        double expected;
        double variance;
    };
    static const Row rows[] = {
        {6, 387840, 5.2177052, 2.954},
        {7, 904960, 6.1962507, 3.125},
        {8, 2068480, 7.1836656, 3.238},
        {9, 4654080, 8.1764248, 3.311},
        {10, 10342400, 9.1723243, 3.356},
    };
    const Row *row = nullptr;
    for (const auto &candidate : rows)
        if (bits.size() >= candidate.min_n)
            row = &candidate;
    if (!row) {
        r.applicable = false;
        return r;
    }
    const int l = row->l;
    const size_t q = 10u * (1u << l);
    const size_t blocks = bits.size() / static_cast<size_t>(l);
    const size_t k = blocks - q;
    std::vector<size_t> table(1u << l, 0);
    auto block_value = [&](size_t idx) {
        uint32_t v = 0;
        for (int j = 0; j < l; ++j)
            v = (v << 1) |
                bits[idx * static_cast<size_t>(l) +
                     static_cast<size_t>(j)];
        return v;
    };
    for (size_t i = 0; i < q; ++i)
        table[block_value(i)] = i + 1;
    double sum = 0.0;
    for (size_t i = q; i < blocks; ++i) {
        const uint32_t v = block_value(i);
        sum += std::log2(static_cast<double>(i + 1 - table[v]));
        table[v] = i + 1;
    }
    const double fn = sum / static_cast<double>(k);
    const double kd = static_cast<double>(k);
    const double c =
        0.7 - 0.8 / l + (4.0 + 32.0 / l) *
                            std::pow(kd, -3.0 / static_cast<double>(l)) /
                            15.0;
    const double sigma = c * std::sqrt(row->variance / kd);
    r.p_value =
        std::erfc(std::fabs(fn - row->expected) / (std::sqrt(2.0) * sigma));
    return r;
}

namespace {

/** Berlekamp-Massey linear complexity of a bit block. */
int
berlekampMassey(const uint8_t *s, int n)
{
    std::vector<uint8_t> b(static_cast<size_t>(n), 0);
    std::vector<uint8_t> c(static_cast<size_t>(n), 0);
    std::vector<uint8_t> t(static_cast<size_t>(n), 0);
    b[0] = 1;
    c[0] = 1;
    int l = 0;
    int m = -1;
    for (int i = 0; i < n; ++i) {
        uint8_t d = s[i];
        for (int j = 1; j <= l; ++j)
            d ^= static_cast<uint8_t>(c[static_cast<size_t>(j)] &
                                      s[i - j]);
        if (d) {
            t = c;
            for (int j = 0; j + (i - m) < n; ++j)
                c[static_cast<size_t>(j + (i - m))] ^=
                    b[static_cast<size_t>(j)];
            if (2 * l <= i) {
                l = i + 1 - l;
                m = i;
                b = t;
            }
        }
    }
    return l;
}

} // namespace

NistResult
nistLinearComplexity(const BitStream &bits, int block_len)
{
    NistResult r{"linear_complexity", 0.0, true};
    const size_t m = static_cast<size_t>(block_len);
    const size_t blocks = bits.size() / m;
    if (blocks < 20) {
        r.applicable = false;
        return r;
    }
    static const double pi[7] = {0.010417, 0.03125, 0.125, 0.5,
                                 0.25,     0.0625,  0.020833};
    const double md = static_cast<double>(block_len);
    const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;
    const double mu = md / 2.0 + (9.0 + sign) / 36.0 -
                      (md / 3.0 + 2.0 / 9.0) / std::pow(2.0, md);
    std::array<double, 7> v{};
    for (size_t b = 0; b < blocks; ++b) {
        const int l = berlekampMassey(bits.data() + b * m,
                                      block_len);
        const double ti =
            ((block_len % 2 == 0) ? 1.0 : -1.0) *
                (static_cast<double>(l) - mu) +
            2.0 / 9.0;
        size_t cat;
        if (ti <= -2.5)
            cat = 0;
        else if (ti <= -1.5)
            cat = 1;
        else if (ti <= -0.5)
            cat = 2;
        else if (ti <= 0.5)
            cat = 3;
        else if (ti <= 1.5)
            cat = 4;
        else if (ti <= 2.5)
            cat = 5;
        else
            cat = 6;
        ++v[cat];
    }
    const double nb = static_cast<double>(blocks);
    double chi2 = 0.0;
    for (size_t k = 0; k < 7; ++k) {
        const double expect = nb * pi[k];
        chi2 += std::pow(v[k] - expect, 2) / expect;
    }
    r.p_value = igamc(3.0, chi2 / 2.0);
    return r;
}

namespace {

/** psi-squared statistic for the serial test. */
double
psiSquared(const BitStream &bits, int m)
{
    if (m <= 0)
        return 0.0;
    const size_t n = bits.size();
    std::vector<uint32_t> counts(1u << m, 0);
    uint32_t window = 0;
    const uint32_t mask = (1u << m) - 1;
    // Prime the wrapped window.
    for (int j = 0; j < m - 1; ++j)
        window = ((window << 1) | bits[static_cast<size_t>(j)]) & mask;
    for (size_t i = 0; i < n; ++i) {
        const size_t idx = (i + static_cast<size_t>(m) - 1) % n;
        window = ((window << 1) | bits[idx]) & mask;
        ++counts[window];
    }
    double sum = 0.0;
    for (uint32_t c : counts)
        sum += static_cast<double>(c) * static_cast<double>(c);
    const double nd = static_cast<double>(n);
    return sum * std::pow(2.0, m) / nd - nd;
}

} // namespace

NistResult
nistSerial(const BitStream &bits, int m)
{
    NistResult r{"serial", 0.0, true};
    if (bits.size() < (1u << (m + 2))) {
        r.applicable = false;
        return r;
    }
    const double psim0 = psiSquared(bits, m);
    const double psim1 = psiSquared(bits, m - 1);
    const double psim2 = psiSquared(bits, m - 2);
    const double del1 = psim0 - psim1;
    const double del2 = psim0 - 2.0 * psim1 + psim2;
    const double p1 = igamc(std::pow(2.0, m - 1) / 2.0, del1 / 2.0);
    const double p2 = igamc(std::pow(2.0, m - 2) / 2.0, del2 / 2.0);
    r.p_value = minPositive({p1, p2});
    return r;
}

NistResult
nistApproximateEntropy(const BitStream &bits, int m)
{
    NistResult r{"approximate_entropy", 0.0, true};
    const size_t n = bits.size();
    if (n < (1u << (m + 3))) {
        r.applicable = false;
        return r;
    }
    auto phi = [&](int mm) {
        if (mm == 0)
            return 0.0;
        std::vector<uint32_t> counts(1u << mm, 0);
        const uint32_t mask = (1u << mm) - 1;
        uint32_t window = 0;
        for (int j = 0; j < mm - 1; ++j)
            window =
                ((window << 1) | bits[static_cast<size_t>(j)]) & mask;
        for (size_t i = 0; i < n; ++i) {
            const size_t idx = (i + static_cast<size_t>(mm) - 1) % n;
            window = ((window << 1) | bits[idx]) & mask;
            ++counts[window];
        }
        double sum = 0.0;
        const double nd = static_cast<double>(n);
        for (uint32_t c : counts) {
            if (c == 0)
                continue;
            const double p = static_cast<double>(c) / nd;
            sum += p * std::log(p);
        }
        return sum;
    };
    const double apen = phi(m) - phi(m + 1);
    const double chi2 =
        2.0 * static_cast<double>(n) * (std::log(2.0) - apen);
    r.p_value = igamc(std::pow(2.0, m - 1), chi2 / 2.0);
    return r;
}

NistResult
nistCumulativeSums(const BitStream &bits)
{
    NistResult r{"cumulative_sums", 0.0, true};
    const size_t n = bits.size();
    if (n < 100) {
        r.applicable = false;
        return r;
    }
    auto run = [&](bool forward) {
        double s = 0.0;
        double z = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const size_t idx = forward ? i : n - 1 - i;
            s += bits[idx] ? 1.0 : -1.0;
            z = std::max(z, std::fabs(s));
        }
        const double nd = static_cast<double>(n);
        const double sqn = std::sqrt(nd);
        double sum1 = 0.0;
        const long k_lo1 =
            static_cast<long>(std::floor((-nd / z + 1.0) / 4.0));
        const long k_hi1 =
            static_cast<long>(std::floor((nd / z - 1.0) / 4.0));
        for (long k = k_lo1; k <= k_hi1; ++k) {
            sum1 += normalCdf((4.0 * k + 1.0) * z / sqn) -
                    normalCdf((4.0 * k - 1.0) * z / sqn);
        }
        double sum2 = 0.0;
        const long k_lo2 =
            static_cast<long>(std::floor((-nd / z - 3.0) / 4.0));
        const long k_hi2 =
            static_cast<long>(std::floor((nd / z - 1.0) / 4.0));
        for (long k = k_lo2; k <= k_hi2; ++k) {
            sum2 += normalCdf((4.0 * k + 3.0) * z / sqn) -
                    normalCdf((4.0 * k + 1.0) * z / sqn);
        }
        return 1.0 - sum1 + sum2;
    };
    r.p_value = minPositive({run(true), run(false)});
    return r;
}

namespace {

/** Random-walk cycles (zero-to-zero excursions) of the +-1 walk. */
std::vector<std::vector<long>>
walkCycles(const BitStream &bits)
{
    std::vector<std::vector<long>> cycles;
    std::vector<long> current;
    long s = 0;
    current.push_back(0);
    for (uint8_t b : bits) {
        s += b ? 1 : -1;
        current.push_back(s);
        if (s == 0) {
            cycles.push_back(std::move(current));
            current.clear();
            current.push_back(0);
        }
    }
    if (current.size() > 1) {
        current.push_back(0); // Close the final partial cycle.
        cycles.push_back(std::move(current));
    }
    return cycles;
}

} // namespace

NistResult
nistRandomExcursion(const BitStream &bits)
{
    NistResult r{"random_excursion", 0.0, true};
    const auto cycles = walkCycles(bits);
    const double j = static_cast<double>(cycles.size());
    if (cycles.size() < 500) {
        r.applicable = false;
        return r;
    }
    // pi_k(x): probability a cycle visits state x exactly k times.
    auto pi = [](int k, int x) {
        const double ax = std::fabs(static_cast<double>(x));
        if (k == 0)
            return 1.0 - 1.0 / (2.0 * ax);
        if (k >= 5)
            return (1.0 / (2.0 * ax)) *
                   std::pow(1.0 - 1.0 / (2.0 * ax), 4.0);
        return (1.0 / (4.0 * ax * ax)) *
               std::pow(1.0 - 1.0 / (2.0 * ax),
                        static_cast<double>(k - 1));
    };
    std::vector<double> ps;
    for (int x : {-4, -3, -2, -1, 1, 2, 3, 4}) {
        std::array<double, 6> v{};
        for (const auto &cycle : cycles) {
            int visits = 0;
            for (long s : cycle)
                if (s == x)
                    ++visits;
            ++v[static_cast<size_t>(std::min(visits, 5))];
        }
        double chi2 = 0.0;
        for (int k = 0; k <= 5; ++k) {
            const double expect = j * pi(k, x);
            chi2 +=
                std::pow(v[static_cast<size_t>(k)] - expect, 2) / expect;
        }
        ps.push_back(igamc(2.5, chi2 / 2.0));
    }
    r.p_value = minPositive(ps);
    return r;
}

NistResult
nistRandomExcursionVariant(const BitStream &bits)
{
    NistResult r{"random_excursion_variant", 0.0, true};
    const auto cycles = walkCycles(bits);
    const double j = static_cast<double>(cycles.size());
    if (cycles.size() < 500) {
        r.applicable = false;
        return r;
    }
    std::map<long, double> visits;
    for (const auto &cycle : cycles)
        for (size_t i = 1; i + 1 < cycle.size(); ++i)
            visits[cycle[i]] += 1.0;
    std::vector<double> ps;
    for (int x = -9; x <= 9; ++x) {
        if (x == 0)
            continue;
        const double xi = visits.count(x) ? visits[x] : 0.0;
        const double ax = std::fabs(static_cast<double>(x));
        const double denom = std::sqrt(2.0 * j * (4.0 * ax - 2.0));
        ps.push_back(std::erfc(std::fabs(xi - j) / denom));
    }
    r.p_value = minPositive(ps);
    return r;
}

std::vector<NistResult>
runNistSuite(const BitStream &bits)
{
    return {
        nistMonobit(bits),
        nistFrequencyWithinBlock(bits),
        nistRuns(bits),
        nistLongestRunOnesInBlock(bits),
        nistBinaryMatrixRank(bits),
        nistDft(bits),
        nistNonOverlappingTemplate(bits),
        nistOverlappingTemplate(bits),
        nistMaurersUniversal(bits),
        nistLinearComplexity(bits),
        nistSerial(bits),
        nistApproximateEntropy(bits),
        nistCumulativeSums(bits),
        nistRandomExcursion(bits),
        nistRandomExcursionVariant(bits),
    };
}

bool
allPass(const std::vector<NistResult> &results)
{
    for (const auto &r : results)
        if (!r.pass())
            return false;
    return true;
}

} // namespace codic
