/**
 * @file
 * Special functions needed by the NIST SP 800-22 statistical tests:
 * the regularized incomplete gamma functions and the standard normal
 * CDF. Implementations follow the classic Cephes series / continued
 * fraction split, which is what the NIST reference code uses.
 */

#ifndef CODIC_NIST_SPECIAL_FUNCTIONS_H
#define CODIC_NIST_SPECIAL_FUNCTIONS_H

namespace codic {

/**
 * Regularized upper incomplete gamma Q(a, x) = Gamma(a, x)/Gamma(a).
 * Domain: a > 0, x >= 0. Q(a, 0) = 1.
 */
double igamc(double a, double x);

/**
 * Regularized lower incomplete gamma P(a, x) = gamma(a, x)/Gamma(a).
 */
double igam(double a, double x);

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

} // namespace codic

#endif // CODIC_NIST_SPECIAL_FUNCTIONS_H
