#include "nist/special_functions.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace codic {

namespace {

constexpr double kMachEp = 1.11022302462515654042e-16;
constexpr double kMaxLog = 709.782712893383996732;
constexpr double kBig = 4.503599627370496e15;
constexpr double kBigInv = 2.22044604925031308085e-16;

/** Series expansion of P(a, x), valid for x < a + 1. */
double
igamSeries(double a, double x)
{
    if (x <= 0.0)
        return 0.0;
    const double ax = a * std::log(x) - x - std::lgamma(a);
    if (ax < -kMaxLog)
        return 0.0;
    const double axe = std::exp(ax);
    double r = a;
    double c = 1.0;
    double ans = 1.0;
    do {
        r += 1.0;
        c *= x / r;
        ans += c;
    } while (c / ans > kMachEp);
    return ans * axe / a;
}

/** Continued fraction for Q(a, x), valid for x >= a + 1. */
double
igamcFraction(double a, double x)
{
    const double ax = a * std::log(x) - x - std::lgamma(a);
    if (ax < -kMaxLog)
        return 0.0;
    const double axe = std::exp(ax);

    double y = 1.0 - a;
    double z = x + y + 1.0;
    double c = 0.0;
    double pkm2 = 1.0;
    double qkm2 = x;
    double pkm1 = x + 1.0;
    double qkm1 = z * x;
    double ans = pkm1 / qkm1;
    double t;
    do {
        c += 1.0;
        y += 1.0;
        z += 2.0;
        const double yc = y * c;
        const double pk = pkm1 * z - pkm2 * yc;
        const double qk = qkm1 * z - qkm2 * yc;
        if (qk != 0.0) {
            const double r = pk / qk;
            t = std::fabs((ans - r) / r);
            ans = r;
        } else {
            t = 1.0;
        }
        pkm2 = pkm1;
        pkm1 = pk;
        qkm2 = qkm1;
        qkm1 = qk;
        if (std::fabs(pk) > kBig) {
            pkm2 *= kBigInv;
            pkm1 *= kBigInv;
            qkm2 *= kBigInv;
            qkm1 *= kBigInv;
        }
    } while (t > kMachEp);
    return ans * axe;
}

} // namespace

double
igam(double a, double x)
{
    CODIC_ASSERT(a > 0.0 && x >= 0.0);
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return igamSeries(a, x);
    return 1.0 - igamcFraction(a, x);
}

double
igamc(double a, double x)
{
    CODIC_ASSERT(a > 0.0 && x >= 0.0);
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - igamSeries(a, x);
    return igamcFraction(a, x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace codic
