/**
 * @file
 * Von Neumann randomness extractor (paper Section 6.1.3, citing
 * [142]): consumes pairs of raw bits and emits the first bit of each
 * discordant pair, removing bias from independent-but-biased input.
 */

#ifndef CODIC_NIST_EXTRACTOR_H
#define CODIC_NIST_EXTRACTOR_H

#include <cstdint>
#include <vector>

namespace codic {

/**
 * Whiten a raw bit stream with the Von Neumann extractor: for each
 * non-overlapping input pair, 01 -> 0, 10 -> 1, 00/11 -> nothing.
 *
 * @param raw Input bits (values 0/1).
 * @return Extracted unbiased bits.
 */
std::vector<uint8_t> vonNeumannExtract(const std::vector<uint8_t> &raw);

/** Observed ones-fraction of a bit stream (bias diagnostic). */
double onesFraction(const std::vector<uint8_t> &bits);

} // namespace codic

#endif // CODIC_NIST_EXTRACTOR_H
