/**
 * @file
 * Cold-boot attack and the CODIC self-destruction defense (paper
 * Section 5.2), dramatized end to end:
 *
 *  1. A victim machine holds secrets in DRAM.
 *  2. The attacker yanks the module and powers it in a rig they
 *     control (power is lost for an arbitrarily short time).
 *  3. On the protected module, the power-on detector fires and the
 *     in-DRAM engine destroys every row before the chip accepts a
 *     single command - including under a low-voltage attack.
 */

#include <cstdio>

#include "coldboot/destruction.h"
#include "coldboot/power_on.h"
#include "common/table.h"

using namespace codic;

int
main()
{
    const DramConfig dram = DramConfig::ddr3_1600(2048); // 2 GB IoT box.

    std::printf("== Victim machine ==\n");
    DramChannel module(dram);
    module.fillAllRows(RowDataState::Data);
    std::printf("2 GB module, %lld rows holding secrets\n",
                static_cast<long long>(dram.totalRows()));

    std::printf("\n== Attack: hot-swap into the attacker's rig ==\n");
    PowerOnFsm fsm(dram.totalRows());
    fsm.observeVoltage(0.0); // Power removed during transplant.
    std::printf("power removed... DRAM retains charge for seconds to "
                "minutes (the cold boot window)\n");

    std::printf("\n-- attacker tries a low-voltage power-up (0.4 V) to "
                "sneak past the detector --\n");
    fsm.observeVoltage(0.4);
    std::printf("power-on FSM state: %s (any ramp from 0 V triggers; "
                "paper Security Analysis)\n",
                fsm.state() == PowerOnState::Destructing
                    ? "DESTRUCTING"
                    : "ready (ATTACK SUCCEEDED)");

    std::printf("\n== Self-destruction (before any command is "
                "accepted) ==\n");
    const auto result =
        runDestruction(dram, DestructionMechanism::Codic);
    fsm.destructionProgress(dram.totalRows());
    std::printf("destroyed %lld rows in %s using %s of energy\n",
                static_cast<long long>(result.rows_destroyed),
                fmtTimeNs(result.time_ns).c_str(),
                fmtEnergyNj(result.energy_nj).c_str());
    std::printf("chip now accepts commands: %s\n",
                fsm.acceptsCommands() ? "yes (and holds only zeros)"
                                      : "no");

    std::printf("\n== What the attacker reads ==\n");
    DramChannel destroyed(dram);
    destroyed.fillAllRows(RowDataState::Zeroes); // Post-destruction.
    std::printf("rows still holding data: %lld / %lld\n",
                static_cast<long long>(
                    destroyed.countRowsInState(RowDataState::Data)),
                static_cast<long long>(dram.totalRows()));

    std::printf("\n== Why not just overwrite from the CPU (TCG)? ==\n");
    const auto tcg = runDestruction(dram, DestructionMechanism::Tcg);
    std::printf("TCG firmware overwrite of the same module: %s "
                "(%.0fx slower) - and it executes\nonly if the "
                "attacker's machine politely runs the victim's "
                "firmware.\n",
                fmtTimeNs(tcg.time_ns).c_str(),
                tcg.time_ns / result.time_ns);

    std::printf("\n== Runtime cost of the defense ==\n");
    std::printf("zero. Destruction happens only at power-on; the only "
                "cost is ~1.1%% DRAM area\nfor the configurable delay "
                "elements (paper Table 6).\n");
    return 0;
}
