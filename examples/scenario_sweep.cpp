/**
 * @file
 * Programmatic use of the Scenario API: enumerate the registry, run
 * a few scenarios at a reduced scale, and collect one JSON document
 * plus human-readable tables - the same machinery behind
 * `codic_run`, driven as a library.
 *
 * This is the integration surface for fleet schedulers: pick
 * scenarios by name, fan them out with per-run RunOptions, and
 * aggregate the structured rows.
 */

#include <iostream>
#include <sstream>

#include "common/result_sink.h"
#include "scenario/registry.h"

int
main()
{
    using namespace codic;

    auto &registry = ScenarioRegistry::instance();
    std::cout << "registry holds " << registry.names().size()
              << " scenarios\n\n";

    // A quick sweep: one circuit table and one PUF campaign, scaled
    // down, both written into a single JSON array.
    RunOptions options;
    options.seed = 1;    // Paper seeds.
    options.threads = 0; // Auto-detect; results identical anyway.
    options.scale = 0.05;

    std::ostringstream json_out;
    JsonResultSink json(json_out);
    TextResultSink text(std::cout);
    MultiResultSink both;
    both.addSink(&json);
    both.addSink(&text);

    for (const char *name :
         {"circuit_table2_latency_energy", "puf_auth"}) {
        if (!runScenario(name, options, both)) {
            std::cerr << "unknown scenario " << name << "\n";
            return 1;
        }
    }
    json.finish();

    std::cout << "JSON document: " << json_out.str().size()
              << " bytes (deterministic for seed "
              << options.seed << ")\n";
    return 0;
}
