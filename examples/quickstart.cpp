/**
 * @file
 * Quickstart: a tour of the CODIC library in ~5 minutes.
 *
 *  1. Define a CODIC variant as a four-signal schedule.
 *  2. Watch what it does to a cell at circuit level.
 *  3. Program it into a DRAM chip's mode registers and issue it
 *     through the cycle-accurate channel.
 *  4. Check the latency/energy of the command (paper Table 2).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "circuit/analog.h"
#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "dram/channel.h"
#include "power/energy_model.h"

using namespace codic;

int
main()
{
    std::printf("== 1. Define a CODIC variant ==\n");
    // CODIC controls four internal DRAM signals (wl, EQ, sense_p,
    // sense_n) at 1 ns granularity inside a 25 ns window. This is
    // CODIC-det generating zeros: sense_n fires before sense_p while
    // the wordline is open (paper Table 1).
    SignalSchedule det_zero;
    det_zero.set(Signal::Wl, 5, 22);
    det_zero.set(Signal::SenseN, 7, 22);
    det_zero.set(Signal::SenseP, 14, 22);
    std::printf("schedule: %s\n", det_zero.str().c_str());
    std::printf("class:    %s\n",
                variantClassName(classifySchedule(det_zero)));

    std::printf("\n== 2. Circuit-level effect ==\n");
    CircuitParams params = CircuitParams::ddr3();
    CellCircuit cell(params, VariationDraw{});
    cell.setCellVoltage(params.vdd); // The cell stores a '1'.
    cell.run(det_zero);
    std::printf("cell stored %.2f V, after CODIC-det it holds %.3f V "
                "(deterministic zero)\n",
                params.vdd, cell.cellVoltage());

    std::printf("\n== 3. Issue it through a simulated DDR3 module ==\n");
    DramChannel channel(DramConfig::ddr3_1600(2048));
    // The memory controller programs four 10-bit mode registers via
    // MRS (paper Section 4.2.2), then issues a single CODIC command.
    const int variant = channel.registerVariant(det_zero);
    Cycle t = 0;
    for (int i = 0; i < ModeRegisterFile::kMrsCommandsPerSchedule; ++i) {
        Command mrs;
        mrs.type = CommandType::Mrs;
        t = channel.issueAtEarliest(mrs, t);
    }
    channel.setRowState(0, 0, 100, RowDataState::Data);
    Command codic;
    codic.type = CommandType::Codic;
    codic.addr.row = 100;
    codic.codic_variant = variant;
    const Cycle done = channel.issueAtEarliest(codic, t);
    std::printf("row 100 state after the command: %s (done at cycle "
                "%lld, all JEDEC timings checked)\n",
                rowDataStateName(channel.rowState(0, 0, 100)),
                static_cast<long long>(done));

    std::printf("\n== 4. Command cost (paper Table 2) ==\n");
    std::printf("latency: %.0f ns, energy: %.1f nJ\n",
                variantLatencyNs(det_zero), variantEnergyNj(det_zero));

    std::printf("\nNext steps: examples/puf_authentication, "
                "examples/coldboot_selfdestruct,\n"
                "examples/secure_dealloc, examples/variant_explorer; "
                "bench/ regenerates every\npaper table and figure.\n");
    return 0;
}
