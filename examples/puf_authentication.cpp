/**
 * @file
 * Device authentication with the CODIC-sig PUF (paper Section 5.1).
 *
 * Scenario: an IoT fleet operator enrolls devices at manufacturing
 * time by storing challenge-response pairs. In the field, a device
 * proves its identity by answering a random enrolled challenge. A
 * counterfeit device (different silicon) cannot answer correctly,
 * even with full knowledge of the protocol. The demo also verifies a
 * device operating at +55 C, using a Jaccard-similarity threshold.
 */

#include <cstdio>
#include <map>

#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/sig_puf.h"

using namespace codic;

namespace {

struct EnrolledDevice
{
    std::string id;
    const SimulatedChip *chip;
    std::map<uint64_t, Response> crps; //!< challenge -> response.
};

} // namespace

int
main()
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf puf;
    Rng rng(2026);

    std::printf("== Enrollment (manufacturing) ==\n");
    std::vector<EnrolledDevice> fleet;
    for (int d = 0; d < 4; ++d) {
        EnrolledDevice dev;
        dev.id = "device-" + std::to_string(d);
        dev.chip = &chips[static_cast<size_t>(d * 7)];
        for (int k = 0; k < 8; ++k) {
            const uint64_t challenge = rng.below(dev.chip->segments());
            dev.crps[challenge] = puf.evaluateFiltered(
                *dev.chip, {challenge, 65536}, {30.0, false, 1});
        }
        std::printf("%s: enrolled %zu challenge-response pairs "
                    "(flip-cell fraction %.3f%%)\n",
                    dev.id.c_str(), dev.crps.size(),
                    dev.chip->sigFlipFraction() * 100.0);
        fleet.push_back(std::move(dev));
    }

    // Authentication accepts when the Jaccard similarity of the
    // fresh response to the enrolled one clears a threshold. With
    // CODIC-sig, intra-similarity is ~1.0 even at +55 C while
    // impostors score ~0.0 (Figs. 5/6), so 0.75 leaves huge margin
    // in both directions.
    const double threshold = 0.75;
    auto authenticate = [&](const EnrolledDevice &claimed,
                            const SimulatedChip &actual_silicon,
                            double temperature) {
        const auto it = std::next(claimed.crps.begin(),
                                  static_cast<long>(rng.below(
                                      claimed.crps.size())));
        const Response fresh = puf.evaluateFiltered(
            actual_silicon, {it->first, 65536},
            {temperature, false, rng.next64()});
        return jaccard(it->second, fresh) >= threshold;
    };

    std::printf("\n== Field verification ==\n");
    int ok = 0;
    for (const auto &dev : fleet)
        ok += authenticate(dev, *dev.chip, 30.0) ? 1 : 0;
    std::printf("genuine devices accepted: %d/4\n", ok);

    std::printf("\n== Hot environment (+55 C) ==\n");
    ok = 0;
    for (const auto &dev : fleet)
        ok += authenticate(dev, *dev.chip, 85.0) ? 1 : 0;
    std::printf("genuine devices accepted at 85 C: %d/4 "
                "(CODIC-sig is temperature-robust, Fig. 6)\n", ok);

    std::printf("\n== Counterfeit attempt ==\n");
    const SimulatedChip &fake = chips[99];
    int rejected = 0;
    for (const auto &dev : fleet)
        rejected += authenticate(dev, fake, 30.0) ? 0 : 1;
    std::printf("counterfeits rejected: %d/4 (responses are unique "
                "per silicon)\n", rejected);

    std::printf("\n== Why this is fast (paper Table 4) ==\n");
    std::printf("one CODIC-sig evaluation needs %d segment passes; "
                "the DRAM Latency PUF\nneeds %d - a 20x evaluation-"
                "latency advantage with a more stable response.\n",
                puf.passesPerEvaluation(true),
                DramLatencyPuf().passesPerEvaluation(true));
    return 0;
}
