/**
 * @file
 * Secure deallocation with CODIC-det (paper Appendix A): when the OS
 * frees a page, its contents must be zeroed so the next owner cannot
 * read them. Software zeroing burns CPU time and memory bandwidth;
 * one CODIC-det command zeroes a whole 8 KB row in-DRAM.
 *
 * This demo runs the stress-ng malloc workload under both paths,
 * verifies the freed rows really hold zeros, and reports the
 * speedup/energy savings of Fig. 8.
 */

#include <cstdio>

#include "common/table.h"
#include "dram/system.h"
#include "secdealloc/evaluate.h"

using namespace codic;

int
main()
{
    std::printf("== Workload: stress-ng malloc stressor "
                "(allocation-intensive, Table 8) ==\n");
    const Workload workload =
        generateWorkload(benchmarkParams("malloc", 42));
    std::printf("trace: %llu instructions, %s deallocated across the "
                "run\n",
                static_cast<unsigned long long>(
                    workload.instructionCount()),
                fmtEnergyNj(0).empty()
                    ? ""
                    : (std::to_string(workload.deallocBytes() >> 20) +
                       " MB").c_str());

    std::printf("\n== Path 1: software zeroing (the kernel memset on "
                "free) ==\n");
    const auto sw = runSingleCore(workload, DeallocMode::SoftwareZero);
    std::printf("runtime %s, DRAM energy %s, lines zeroed by the CPU: "
                "%llu\n",
                fmtTimeNs(sw.time_ns).c_str(),
                fmtEnergyNj(sw.energy_nj).c_str(),
                static_cast<unsigned long long>(
                    sw.core_stats.dealloc_lines_zeroed));

    std::printf("\n== Path 2: CODIC-det row operations ==\n");
    const auto hw = runSingleCore(workload, DeallocMode::CodicDet);
    std::printf("runtime %s, DRAM energy %s, rows zeroed in-DRAM: "
                "%llu (one command each)\n",
                fmtTimeNs(hw.time_ns).c_str(),
                fmtEnergyNj(hw.energy_nj).c_str(),
                static_cast<unsigned long long>(
                    hw.core_stats.dealloc_rows));

    std::printf("\n== Security check: does the freed memory actually "
                "hold zeros? ==\n");
    // Run it on a 2-channel DramSystem: row blocks interleave across
    // channels, and the row ops land on whichever channel owns them.
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowChannelBankColumn;
    DramSystem system(DramConfig::ddr3_1600(2048, 2), cc);
    CoreConfig cfg;
    cfg.dealloc = DeallocMode::CodicDet;
    InOrderCore core(system, cfg);
    std::vector<TraceOp> ops;
    for (uint64_t a = 0; a < 32768; a += 64)
        ops.push_back({OpType::Store, a, 0}); // Secrets written.
    ops.push_back({OpType::DeallocRegion, 0, 32768});
    Workload probe{"probe", ops};
    core.bind(&probe);
    core.run();
    int64_t zeroed = 0;
    for (uint64_t a = 0; a < 32768; a += 8192) {
        const Address addr = system.map().decode(a);
        if (system.channel(addr.channel)
                .rowState(addr.rank, addr.bank, addr.row) ==
            RowDataState::Zeroes)
            ++zeroed;
    }
    std::printf("freed rows verified zeroed: %lld/4 "
                "(across %d channels)\n",
                static_cast<long long>(zeroed),
                system.channelCount());

    std::printf("\n== Result (paper Fig. 8) ==\n");
    TextTable t({"Metric", "Software", "CODIC", "Improvement"});
    t.addRow({"runtime", fmtTimeNs(sw.time_ns), fmtTimeNs(hw.time_ns),
              fmt((sw.time_ns / hw.time_ns - 1.0) * 100.0, 1) +
                  " % speedup"});
    t.addRow({"DRAM energy", fmtEnergyNj(sw.energy_nj),
              fmtEnergyNj(hw.energy_nj),
              fmt((1.0 - hw.energy_nj / sw.energy_nj) * 100.0, 1) +
                  " % savings"});
    std::printf("%s", t.render().c_str());
    return 0;
}
