/**
 * @file
 * Exploring the CODIC design space (paper Section 4.1.3): the
 * substrate exposes 300^4 possible commands; only the relative order
 * of the four signals determines the functionality. This example
 * samples the space uniformly, classifies every sampled schedule,
 * validates each class's behaviour at circuit level, and summarizes
 * the functional landscape a researcher would explore.
 */

#include <cstdio>
#include <map>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "common/rng.h"
#include "common/table.h"
#include "power/energy_model.h"

using namespace codic;

namespace {

SignalSchedule
randomSchedule(Rng &rng)
{
    SignalSchedule s;
    for (size_t i = 0; i < kNumSignals; ++i) {
        if (!rng.chance(0.8))
            continue; // Some signals stay unused.
        const int start = static_cast<int>(rng.below(24));
        const int end =
            start + 1 +
            static_cast<int>(
                rng.below(static_cast<uint64_t>(24 - start)));
        s.set(static_cast<Signal>(i), start, end);
    }
    return s;
}

} // namespace

int
main()
{
    std::printf("== The CODIC design space ==\n");
    std::printf("pulses per signal: %llu; total variants: %llu "
                "(300^4, Section 4.1.3)\n\n",
                static_cast<unsigned long long>(
                    SignalSchedule::pulsesPerSignal()),
                static_cast<unsigned long long>(
                    SignalSchedule::totalVariants()));

    std::printf("== Sampling 100,000 random schedules ==\n");
    Rng rng(4);
    std::map<VariantClass, uint64_t> census;
    std::map<VariantClass, SignalSchedule> witness;
    for (int i = 0; i < 100000; ++i) {
        const SignalSchedule s = randomSchedule(rng);
        const VariantClass c = classifySchedule(s);
        if (++census[c] == 1)
            witness[c] = s;
    }
    TextTable t({"Class", "Frequency", "Latency (ns)", "Energy (nJ)",
                 "Example schedule"});
    for (const auto &[cls, count] : census) {
        const auto &w = witness[cls];
        t.addRow({variantClassName(cls),
                  fmt(static_cast<double>(count) / 1000.0, 2) + " %",
                  fmt(variantLatencyNs(w), 0),
                  fmt(variantEnergyNj(w), 1), w.str()});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\n== Circuit-level validation of one sampled variant "
                "per class ==\n");
    const CircuitParams params = CircuitParams::ddr3();
    for (const auto &[cls, sched] : witness) {
        if (cls == VariantClass::Noop || cls == VariantClass::Custom)
            continue;
        CellCircuit cell(params, VariationDraw{});
        cell.setCellVoltage(params.vdd);
        cell.run(sched, 32.0);
        std::printf("  %-14s %-34s -> cell %.2f V, bitline %.2f V\n",
                    variantClassName(cls), sched.str().c_str(),
                    cell.cellVoltage(), cell.bitlineVoltage());
    }

    std::printf("\nTakeaway: a handful of functional classes span the "
                "8.1e9-variant space;\neverything else is timing "
                "headroom a vendor can use to tune reliability,\n"
                "latency, and energy per device (paper Section "
                "5.3.2).\n");
    return 0;
}
