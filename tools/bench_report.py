#!/usr/bin/env python3
"""Benchmark-trajectory report over the codic_run scenarios.

Runs the bench_hotpath microbenchmark plus the fleet + scheduler +
refresh + QoS + thermal/co-sim scenarios, extracts the hot path's
wall-clock throughput and the scenarios' *modeled* metrics (makespan,
latency percentiles, read-queue latencies, energy, thermal peaks,
contention slowdowns - deterministic, machine-independent values)
into a BENCH_PR10.json trajectory file, and gates on five conditions
(plus the thermal closed-loop invariants, which are hard errors in
the extractors themselves):

  1. No lower-is-better metric regresses more than --tolerance
     (default 15%) against the committed baseline. Metrics absent
     from the baseline (e.g. the ablation_refresh read-queue
     entries, which predate no baseline) are tolerated and simply
     recorded, and scenarios the baseline has never seen (e.g.
     trace_replay@sample) are warned about, never a failure.
  2. The batched bank-parallel shard replay improves the 8-shard
     fleet_scaling makespan by at least --min-improvement percent
     (default 20%) over the eager single-request replay.
  3. The batched preset's 8-wide read-reordering window improves
     mean read latency on the row-conflict stream by at least
     --min-read-window-improvement percent (default 20%) over
     strict arrival order.
  4. bench_hotpath wall-clock throughput (transactions/sec, derived
     here from the transaction count over the median of its
     repeated wall_s samples) does not regress more than
     --hotpath-tolerance (default 15%) below the pinned baseline's
     txn_per_sec. Throughput is the one wall-clock metric gated on:
     the baseline is pinned per runner class and the tolerance is
     generous, so only a genuine hot-path slowdown trips it.
  5. The serving preset improves p99 latency of the urgent
     (authenticate-class) reads of the ablation_qos priority storm
     by at least --min-qos-improvement percent (default 20%) over
     the refresh-matched priority-blind batched policy.

Scenario wall-clock values (wall_s) are still recorded for telemetry
when present but never gated on: only modeled values are comparable
across machines.

Usage:
  bench_report.py --build-dir build --out BENCH_PR10.json \
      [--baseline bench/BENCH_baseline.json] [--tolerance 0.15] \
      [--hotpath-tolerance 0.15] [--min-improvement 20] \
      [--min-read-window-improvement 20] \
      [--min-qos-improvement 20] [--write-baseline FILE] \
      [--skip-hotpath]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "codic-bench-trajectory-v2"

# Hot-path throughput measured at the commit immediately before the
# raw-speed overhaul (arena ticket records, SoA bank state, pow2
# address decode), same machine and bench_hotpath defaults as the
# numbers recorded under "hotpath" - the before/after pair the
# overhaul's >= 2x replay-throughput acceptance was judged on.
HOTPATH_PRE_PR6 = {
    "closed_loop_txn_per_sec": 2892607.0,
    "replay_txn_per_sec": 6798119.0,
}

# Scenario runs: name -> (codic_run args, extractor key).
BENCH_SCALE = "0.25"
FLEET_ARGS = ["--devices", "1000", "--requests", "20000"]


def run_codic(build_dir, args, timings):
    """Run codic_run and return its parsed JSON document."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        out_path = f.name
    cmd = [os.path.join(build_dir, "codic_run"), *args,
           "--out", out_path, "--quiet"]
    if timings:
        cmd.append("--timings")
    try:
        subprocess.run(cmd, check=True)
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def run_hotpath(build_dir):
    """Run bench_hotpath and derive txn_per_sec from its wall_s.

    The binary reports its own median/txn_per_sec, but the gate
    re-derives both from the raw wall_s samples so the gated number
    is exactly transactions / median(wall_s) regardless of binary
    version.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        out_path = f.name
    cmd = [os.path.join(build_dir, "bench_hotpath"),
           "--out", out_path]
    try:
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(out_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(out_path)
    if doc.get("schema") != "codic-hotpath-v1":
        raise SystemExit("bench_report: unexpected bench_hotpath "
                         f"schema {doc.get('schema')!r}")
    hotpath = {}
    for name, loop in sorted(doc["loops"].items()):
        wall = sorted(loop["wall_s"])
        median_wall_s = wall[len(wall) // 2]
        hotpath[name] = {
            "transactions": loop["transactions"],
            "wall_s": loop["wall_s"],
            "median_wall_s": median_wall_s,
            "txn_per_sec": loop["transactions"] / median_wall_s,
        }
    hotpath["pre_pr6_reference"] = dict(HOTPATH_PRE_PR6)
    if "replay" in hotpath:
        hotpath["pre_pr6_reference"]["replay_speedup_vs_pre"] = (
            hotpath["replay"]["txn_per_sec"] /
            HOTPATH_PRE_PR6["replay_txn_per_sec"])
    if "closed_loop" in hotpath:
        hotpath["pre_pr6_reference"]["closed_loop_speedup_vs_pre"] = (
            hotpath["closed_loop"]["txn_per_sec"] /
            HOTPATH_PRE_PR6["closed_loop_txn_per_sec"])
    return hotpath


def rows(doc, predicate):
    return [r for scenario in doc for r in scenario["rows"]
            if predicate(r)]


def latency_metrics(doc):
    """Metrics of a scenario that emits a modeled-latency row.

    These scenarios report summed service time (total_service_ms),
    not a makespan - the makespan_ms field stays null so the two
    metrics are never conflated across scenarios.
    """
    lat = rows(doc, lambda r: "p99_us" in r)
    if not lat:
        raise SystemExit("bench_report: no latency row emitted")
    r = lat[0]
    out = {
        "makespan_ms": None,
        "total_service_ms": r["total_service_ms"],
        "p50_us": r["p50_us"],
        "p95_us": r["p95_us"],
        "p99_us": r["p99_us"],
        "energy_mj": r["energy_mj"],
    }
    if "wall_s" in r:
        out["wall_s"] = r["wall_s"]
    return out


def scaling_metrics(doc, shards):
    """8-shard makespan of a fleet_scaling sweep."""
    pts = rows(doc, lambda r: r.get("shards") == shards and
               "makespan_ms" in r)
    if not pts:
        raise SystemExit(
            f"bench_report: no scaling row for {shards} shards")
    r = pts[0]
    out = {
        "makespan_ms": r["makespan_ms"],
        "p50_us": None,
        "p95_us": None,
        "p99_us": None,
        "energy_mj": None,
        "speedup_vs_1_shard": r["speedup_vs_1_shard"],
    }
    if "wall_s" in r:
        out["wall_s"] = r["wall_s"]
    return out


def ablation_metrics(doc):
    """Batched replay point of the ablation_scheduler sweep."""
    pts = rows(doc, lambda r: r.get("replay_batch") == 8 and
               "makespan_ms" in r)
    if not pts:
        raise SystemExit(
            "bench_report: no replay_batch=8 ablation row")
    r = pts[0]
    return {
        "makespan_ms": r["makespan_ms"],
        "p50_us": None,
        "p95_us": None,
        "p99_us": None,
        "energy_mj": None,
        "speedup_vs_serial": r["speedup_vs_serial"],
    }


def read_window_metrics(doc, window):
    """Read-queue metrics of one ablation_refresh window point."""
    pts = rows(doc, lambda r: r.get("read_window") == window)
    if not pts:
        raise SystemExit(
            f"bench_report: no read_window={window} refresh-ablation "
            "row")
    r = pts[0]
    return {
        "makespan_ms": r["makespan_us"] / 1e3,
        "total_service_ms": None,
        "p50_us": r["read_p50_us"],
        "p95_us": r["read_p95_us"],
        "p99_us": None,
        "energy_mj": None,
        "read_mean_us": r["read_mean_us"],
        "activations": r["activations"],
    }


def thermal_metrics(doc):
    """Closed-loop summary of a thermal_feedback run.

    The idle-convergence and monotone-response invariants are hard
    gates here (they are the subsystem's correctness contract, not a
    performance trajectory); the peak temperature and flip response
    are recorded as telemetry.
    """
    pts = rows(doc, lambda r: "idle_matches_static" in r)
    if not pts:
        raise SystemExit("bench_report: no thermal_feedback summary "
                         "row emitted")
    r = pts[0]
    if not r["idle_matches_static"]:
        raise SystemExit("bench_report: thermal_feedback idle epochs "
                         "diverged from the static paper numbers")
    if not (r["flip_response_nonzero"] and
            r["flip_response_monotone"]):
        raise SystemExit("bench_report: thermal_feedback storm did "
                         "not produce a monotone nonzero flip "
                         "response")
    return {
        "makespan_ms": None,
        "total_service_ms": None,
        "p50_us": None,
        "p95_us": None,
        "p99_us": None,
        "energy_mj": None,
        "storm_peak_temp_c": r["storm_peak_temp_c"],
        "min_mean_jaccard": r["min_mean_jaccard"],
    }


def contention_metrics(doc, cores):
    """Aggregate slowdown of one multicore_contention core count."""
    pts = rows(doc, lambda r: r.get("cores") == cores and
               "mean_slowdown" in r)
    if not pts:
        raise SystemExit(
            f"bench_report: no contention summary for {cores} cores")
    r = pts[0]
    return {
        "makespan_ms": r["makespan_us"] / 1e3,
        "total_service_ms": None,
        "p50_us": None,
        "p95_us": None,
        "p99_us": None,
        "energy_mj": None,
        "mean_slowdown": r["mean_slowdown"],
    }


def qos_metrics(doc):
    """QoS summary of an ablation_qos run: urgent-read p99 of the
    priority storm under the serving preset (gated lower-is-better as
    p99_us) plus the improvement percentages the >= 20% gate and the
    trajectory record."""
    pts = rows(doc, lambda r: "storm_p99_improvement_pct" in r)
    if not pts:
        raise SystemExit("bench_report: no ablation_qos improvement "
                         "row emitted")
    r = pts[0]
    return {
        "makespan_ms": None,
        "total_service_ms": None,
        "p50_us": None,
        "p95_us": None,
        "p99_us": r["storm_p99_serving_us"],
        "energy_mj": None,
        "storm_p99_blind_us": r["storm_p99_blind_us"],
        "storm_p99_improvement_pct": r["storm_p99_improvement_pct"],
        "fleet_p99_blind_us": r["fleet_p99_blind_us"],
        "fleet_p99_serving_us": r["fleet_p99_serving_us"],
        "fleet_p99_improvement_pct": r["fleet_p99_improvement_pct"],
    }


def overload_metrics(doc):
    """Serving gates of a fleet_overload sweep: the bounded-p99 /
    monotone-shed / urgent-protection properties are hard gates here
    (they are the admission controller's contract, not a performance
    trajectory); the worst admitted urgent p99 over the sweep is
    gated lower-is-better as p99_us."""
    pts = rows(doc, lambda r: "p99_bounded" in r)
    if not pts:
        raise SystemExit("bench_report: no fleet_overload summary "
                         "row emitted")
    r = pts[0]
    if not r["p99_bounded"]:
        raise SystemExit("bench_report: fleet_overload admitted "
                         "urgent p99 exceeded 2x its in-capacity "
                         "value")
    if not r["shed_monotone"]:
        raise SystemExit("bench_report: fleet_overload shed rate "
                         "did not rise monotonically with offered "
                         "load")
    if not r["urgent_protected"]:
        raise SystemExit("bench_report: fleet_overload shed urgent "
                         "traffic ahead of best-effort")
    sweep = rows(doc, lambda r: "offered_over_capacity" in r)
    out = {
        "makespan_ms": None,
        "total_service_ms": None,
        "p50_us": None,
        "p95_us": None,
        "p99_us": r["worst_urgent_p99_us"],
        "energy_mj": None,
        "capacity_krps": r["capacity_krps"],
        "in_capacity_urgent_p99_us": r["in_capacity_urgent_p99_us"],
        "shed_rate_curve": [p["shed_rate"] for p in sweep],
    }
    return out


def region_metrics(doc):
    """Global roll-up of a fleet_region_serving storm: fleet-wide
    modeled percentiles and energy over every region's admitted
    requests (gated lower-is-better), plus the global shed rate."""
    pts = rows(doc, lambda r: "regions" in r and "latency_p99_us" in r)
    if not pts:
        raise SystemExit("bench_report: no fleet_region_serving "
                         "global roll-up row emitted")
    r = pts[0]
    out = {
        "makespan_ms": None,
        "total_service_ms": None,
        "p50_us": r["latency_p50_us"],
        "p95_us": r["latency_p95_us"],
        "p99_us": r["latency_p99_us"],
        "energy_mj": r["energy_mj"],
        "regions": r["regions"],
        "shed_rate": r["shed_rate"],
    }
    if "wall_s" in r:
        out["wall_s"] = r["wall_s"]
    return out


def trace_replay_metrics(doc):
    """Modeled metrics of a trace_replay run."""
    pts = rows(doc, lambda r: "read_p99_us" in r and "records" in r)
    if not pts:
        raise SystemExit("bench_report: no trace-replay row emitted")
    r = pts[0]
    return {
        "makespan_ms": r["makespan_ms"],
        "total_service_ms": None,
        "p50_us": r["read_p50_us"],
        "p95_us": r["read_p95_us"],
        "p99_us": r["read_p99_us"],
        "energy_mj": None,
        "records": r["records"],
        "activations": r["activations"],
    }


# Committed sample trace replayed for the trajectory (relative to
# the repository root, where CI invokes this script).
SAMPLE_TRACE = os.path.join("bench", "traces",
                            "ablation_scheduler_seed1.trace")


def collect(build_dir, timings, skip_hotpath):
    report = {"schema": SCHEMA, "scenarios": {}, "derived": {},
              "hotpath": {}}
    if not skip_hotpath:
        report["hotpath"] = run_hotpath(build_dir)
    s = report["scenarios"]

    s["fleet_auth_load"] = latency_metrics(run_codic(
        build_dir, ["--scenario", "fleet_auth_load", *FLEET_ARGS],
        timings))
    s["fleet_mixed"] = latency_metrics(run_codic(
        build_dir, ["--scenario", "fleet_mixed", *FLEET_ARGS],
        timings))
    s["fleet_scaling@8shards:batched"] = scaling_metrics(run_codic(
        build_dir, ["--scenario", "fleet_scaling", "--scale",
                    BENCH_SCALE, "--shards", "8"], timings), 8)
    s["fleet_scaling@8shards:eager"] = scaling_metrics(run_codic(
        build_dir, ["--scenario", "fleet_scaling", "--scale",
                    BENCH_SCALE, "--shards", "8", "--sched", "eager"],
        timings), 8)
    s["ablation_scheduler@replay8"] = ablation_metrics(run_codic(
        build_dir, ["--scenario", "ablation_scheduler", "--scale",
                    BENCH_SCALE], timings))
    # Read-queue metrics of the transaction-based controller: the
    # batched preset's 8-wide read-reordering window against the
    # strict arrival-order window=1 point of the same sweep. Absent
    # from pre-redesign baselines; check_regressions tolerates that.
    refresh_doc = run_codic(
        build_dir, ["--scenario", "ablation_refresh", "--scale",
                    BENCH_SCALE], timings)
    s["ablation_refresh@window1"] = read_window_metrics(
        refresh_doc, 1)
    s["ablation_refresh@window8"] = read_window_metrics(
        refresh_doc, 8)
    # Replay of the committed sample trace. A missing trace file is a
    # warning, not an error: the metrics predate no baseline and the
    # trajectory must keep working from a partial checkout.
    if os.path.exists(SAMPLE_TRACE):
        s["trace_replay@sample"] = trace_replay_metrics(run_codic(
            build_dir, ["--scenario", "trace_replay", "--trace",
                        SAMPLE_TRACE], timings))
    else:
        print(f"bench_report: WARNING: sample trace {SAMPLE_TRACE} "
              "not found; skipping trace_replay metrics",
              file=sys.stderr)

    # Co-sim / thermal scenarios: deterministic modeled metrics with
    # the closed-loop invariants as hard gates. Absent from older
    # baselines; check_regressions records them with a warning.
    s["thermal_feedback"] = thermal_metrics(run_codic(
        build_dir, ["--scenario", "thermal_feedback", "--scale",
                    BENCH_SCALE], timings))
    s["multicore_contention@8cores"] = contention_metrics(run_codic(
        build_dir, ["--scenario", "multicore_contention", "--scale",
                    BENCH_SCALE, "--cores", "8"], timings), 8)

    # QoS ablation: serving-preset priority scheduling against the
    # refresh-matched priority-blind baseline. Absent from older
    # baselines; check_regressions records it with a warning.
    s["ablation_qos"] = qos_metrics(run_codic(
        build_dir, ["--scenario", "ablation_qos", "--scale",
                    BENCH_SCALE], timings))

    # Serving-layer scenarios: admission-control overload sweep and
    # the multi-region storm, with the serving contracts (bounded
    # admitted p99, monotone shed, urgent protection) as hard gates
    # in the extractors. Absent from older baselines;
    # check_regressions records them with a warning.
    s["fleet_overload"] = overload_metrics(run_codic(
        build_dir, ["--scenario", "fleet_overload", "--scale",
                    BENCH_SCALE], timings))
    s["fleet_region_serving"] = region_metrics(run_codic(
        build_dir, ["--scenario", "fleet_region_serving", "--scale",
                    BENCH_SCALE], timings))

    eager = s["fleet_scaling@8shards:eager"]["makespan_ms"]
    batched = s["fleet_scaling@8shards:batched"]["makespan_ms"]
    report["derived"]["fleet_scaling_batched_improvement_pct"] = (
        100.0 * (1.0 - batched / eager))
    w1 = s["ablation_refresh@window1"]["read_mean_us"]
    w8 = s["ablation_refresh@window8"]["read_mean_us"]
    report["derived"]["read_window_mean_latency_improvement_pct"] = (
        100.0 * (1.0 - w8 / w1))
    report["derived"]["qos_storm_p99_improvement_pct"] = (
        s["ablation_qos"]["storm_p99_improvement_pct"])
    return report


# Lower-is-better metric keys gated against the baseline.
GATED = ("makespan_ms", "total_service_ms", "p50_us", "p95_us",
         "p99_us", "energy_mj")


def check_regressions(report, baseline, tolerance):
    failures = []
    # Scenarios the report has but the baseline predates are
    # recorded without gating - a warning, never a KeyError, so a
    # new subsystem can add metrics before its first baseline
    # refresh.
    for name in sorted(report.get("scenarios", {})):
        if name not in baseline.get("scenarios", {}):
            print(f"bench_report: WARNING: scenario '{name}' is "
                  "absent from the baseline; recorded without "
                  "gating", file=sys.stderr)
    for name, base_metrics in baseline.get("scenarios", {}).items():
        new_metrics = report["scenarios"].get(name)
        if new_metrics is None:
            failures.append(f"scenario '{name}' missing from report")
            continue
        for key in GATED:
            base = base_metrics.get(key)
            new = new_metrics.get(key)
            if base is None or new is None:
                continue
            if new > base * (1.0 + tolerance):
                failures.append(
                    f"{name}.{key}: {new:.4g} regressed "
                    f">{tolerance:.0%} over baseline {base:.4g}")
    return failures


def check_hotpath(report, baseline, tolerance):
    """Wall-clock throughput gate: higher is better, so a loop fails
    when its txn_per_sec drops more than `tolerance` below the pinned
    baseline. Loops absent from the baseline are recorded only."""
    failures = []
    for name, base_loop in baseline.get("hotpath", {}).items():
        if not isinstance(base_loop, dict):
            continue
        base = base_loop.get("txn_per_sec")
        new_loop = report.get("hotpath", {}).get(name)
        if base is None or new_loop is None:
            continue
        new = new_loop.get("txn_per_sec")
        if new is None:
            continue
        if new < base * (1.0 - tolerance):
            failures.append(
                f"hotpath.{name}.txn_per_sec: {new:,.0f} regressed "
                f">{tolerance:.0%} below baseline {base:,.0f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_PR10.json")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline to gate against")
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--hotpath-tolerance", type=float, default=0.15,
                    help="allowed wall-clock throughput drop of a "
                         "bench_hotpath loop below the baseline's "
                         "txn_per_sec")
    ap.add_argument("--skip-hotpath", action="store_true",
                    help="skip the bench_hotpath wall-clock runs "
                         "(e.g. on sanitizer builds)")
    ap.add_argument("--min-improvement", type=float, default=20.0,
                    help="required batched-vs-eager fleet_scaling "
                         "makespan improvement (percent)")
    ap.add_argument("--min-read-window-improvement", type=float,
                    default=20.0,
                    help="required mean read-latency improvement of "
                         "the batched preset's read-reordering "
                         "window over strict arrival order "
                         "(percent)")
    ap.add_argument("--min-qos-improvement", type=float,
                    default=20.0,
                    help="required urgent-read p99 improvement of "
                         "the serving preset over the priority-blind "
                         "baseline in the ablation_qos storm "
                         "(percent)")
    ap.add_argument("--timings", action="store_true",
                    help="record wall-clock telemetry in the report")
    ap.add_argument("--write-baseline", default=None,
                    help="also write the report (minus wall "
                         "telemetry) as a new baseline file")
    args = ap.parse_args()

    report = collect(args.build_dir, args.timings,
                     args.skip_hotpath)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_report: wrote {args.out}")

    for name in ("closed_loop", "replay"):
        loop = report["hotpath"].get(name)
        if loop:
            print(f"bench_report: hotpath {name}: "
                  f"{loop['txn_per_sec']:,.0f} txn/s "
                  f"(median of {len(loop['wall_s'])})")

    improvement = report["derived"][
        "fleet_scaling_batched_improvement_pct"]
    print(f"bench_report: batched vs eager 8-shard makespan "
          f"improvement: {improvement:.1f}%")

    window_improvement = report["derived"][
        "read_window_mean_latency_improvement_pct"]
    print(f"bench_report: read-window mean read-latency improvement "
          f"(window 8 vs 1, batched preset): "
          f"{window_improvement:.1f}%")

    qos_improvement = report["derived"][
        "qos_storm_p99_improvement_pct"]
    print(f"bench_report: serving vs priority-blind urgent-read p99 "
          f"improvement (ablation_qos storm): "
          f"{qos_improvement:.1f}%")

    failures = []
    if improvement < args.min_improvement:
        failures.append(
            f"batched replay improvement {improvement:.1f}% is below "
            f"the required {args.min_improvement:.0f}%")
    if window_improvement < args.min_read_window_improvement:
        failures.append(
            f"read-window latency improvement "
            f"{window_improvement:.1f}% is below the required "
            f"{args.min_read_window_improvement:.0f}%")
    if qos_improvement < args.min_qos_improvement:
        failures.append(
            f"QoS urgent-read p99 improvement "
            f"{qos_improvement:.1f}% is below the required "
            f"{args.min_qos_improvement:.0f}%")

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        failures += check_regressions(report, baseline,
                                      args.tolerance)
        if not args.skip_hotpath:
            failures += check_hotpath(report, baseline,
                                      args.hotpath_tolerance)

    if args.write_baseline:
        clean = json.loads(json.dumps(report))
        for metrics in clean["scenarios"].values():
            metrics.pop("wall_s", None)
        # The hotpath baseline keeps only the gated throughput (the
        # raw samples are telemetry of one run, not a pin).
        clean["hotpath"] = {
            name: {"txn_per_sec": loop["txn_per_sec"],
                   "transactions": loop["transactions"]}
            for name, loop in clean.get("hotpath", {}).items()
            if isinstance(loop, dict) and "txn_per_sec" in loop
        }
        with open(args.write_baseline, "w") as f:
            json.dump(clean, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_report: wrote baseline {args.write_baseline}")

    if failures:
        for failure in failures:
            print(f"bench_report: FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_report: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
