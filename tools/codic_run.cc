/**
 * @file
 * codic_run - the single driver over the scenario registry and the
 * canonical way to reproduce the paper's figures and tables.
 *
 * Usage:
 *   codic_run --list
 *   codic_run --scenario puf_fig5_jaccard [--scenario ...]
 *   codic_run --all --scale 0.01 --out results.json --csv results.csv
 *
 * Options:
 *   --list             List registered scenarios (grouped by name
 *                      prefix) and exit.
 *   --list-md          Emit the scenario catalog as a markdown
 *                      document (docs/SCENARIOS.md is generated from
 *                      this, and CI fails if it drifts) and exit.
 *   --scenario NAME    Run one scenario (repeatable).
 *   --all              Run every registered scenario.
 *   --seed N           Campaign seed (default 1: the paper seeds).
 *   --threads N        CampaignEngine threads (0 = auto-detect).
 *   --channels N       DramConfig override: channels.
 *   --capacity-mb N    DramConfig override: module capacity.
 *   --scale F          Work-scale factor in (0,1] (default 1).
 *   --repeats N        Repeat each scenario N times (seed, seed+1...).
 *   --devices N        Fleet population size (fleet_* scenarios).
 *   --shards N         Fleet shard count (execution parameter).
 *   --requests N       Fleet request-stream length.
 *   --zipf F           Fleet device-popularity Zipf exponent
 *                      (0 = uniform).
 *   --store FILE       Fleet enrollment-store file (written by
 *                      fleet_enroll, read by the traffic scenarios;
 *                      ".json" suffix selects the JSON format).
 *   --store-mmap       Serve the --store file through the
 *                      mmap-backed read path (flat per-request
 *                      memory at any store size; binary format
 *                      only - the JSON mirror has no record index).
 *   --regions N        Serving regions for the multi-region fleet
 *                      scenarios (default: the scenario's own,
 *                      normally 3). Each region gets its own
 *                      population, mix, and arrival process on the
 *                      shared engine.
 *   --shed RPS         Admission-control capacity in requests/s for
 *                      the fleet scenarios: 0 disables admission
 *                      (the default outside fleet_overload);
 *                      fleet_overload derives its default from the
 *                      cost model.
 *   --preset NAME      DRAM speed grade (ddr3-1600 | ddr3-1333 |
 *                      ddr4-2400 | ddr4-3200) applied wherever a
 *                      scenario builds its DramConfig from the run
 *                      options; default is each scenario's own grade
 *                      (the paper's ddr3-1600 baseline). "--preset
 *                      list" prints the accepted names.
 *   --sched SPEC       Memory-scheduler policy: a preset (eager |
 *                      batched | aggressive | serving) optionally
 *                      followed by ":knob=value,..." overrides, e.g.
 *                      "batched:refresh=auto,read_window=16" or
 *                      "serving:refresh=per-bank".
 *                      "--sched help" (or "--sched list") prints the
 *                      preset table and every knob. Applies wherever
 *                      a scenario builds its DramConfig from the run
 *                      options (the fleet_* scenarios, whose own
 *                      default is batched; paper campaigns keep the
 *                      eager legacy policy their published numbers
 *                      were measured with).
 *   --trace FILE       Input trace for the trace_* scenarios. With
 *                      no --scenario/--all selection, implies
 *                      "--scenario trace_replay". The file must
 *                      exist and must differ from --record-trace.
 *   --trace-speed F    Replay inter-arrival rescale (> 1 compresses
 *                      the trace in time; default 1).
 *   --ambient F        Ambient temperature (C) of the thermal
 *                      feedback loop (thermal_* scenarios; default
 *                      30, the paper's static campaign temperature;
 *                      modeled range -40..120).
 *   --epoch-us F       Thermal/co-sim epoch length in microseconds
 *                      (default: each scenario's own, normally 100).
 *   --cores N          Core count for multicore_contention (default:
 *                      the scenario's 2/4/8 sweep).
 *   --record-trace FILE Record every DramSystem transaction the
 *                      selected scenarios submit into FILE (the
 *                      post-LLC DRAM-level trace; see
 *                      trace/trace_format.h). Byte-deterministic at
 *                      --threads 1.
 *   --trace-info FILE  Print the header/provenance summary of a
 *                      trace file (scenario, seed, format version,
 *                      record/epoch counts, per-kind ops) and exit.
 *   --out FILE         Write machine-readable JSON ("-" = stdout).
 *   --csv FILE         Write long-format CSV ("-" = stdout).
 *   --timings          Include wall-clock values in JSON/CSV
 *                      (breaks byte-determinism of the output).
 *   --quiet            Suppress the human-readable text report.
 *
 * Without --timings the JSON/CSV output is byte-identical for a
 * fixed --seed/--scale at any --threads or --shards value. Two
 * documented exceptions: ablation_engine_parallelism treats the
 * thread count and fleet_scaling the shard count as input
 * parameters of the study itself, so explicit values above 8 extend
 * their sweeps (and with them the row sets).
 *
 * When a scenario fails, the run continues with the remaining
 * scenarios, prints a per-scenario failure summary, and exits
 * nonzero - a single broken campaign no longer aborts an --all run.
 *
 * When --out or --csv is "-", the text report is suppressed
 * automatically so stdout stays parseable.
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result_sink.h"
#include "dram/config.h"
#include "scenario/registry.h"
#include "trace/recorder.h"
#include "trace/trace_io.h"

namespace {

using namespace codic;

void
printUsage()
{
    std::fprintf(
        stderr,
        "usage: codic_run --list | --list-md\n"
        "       codic_run (--scenario NAME)... | --all\n"
        "                 [--seed N] [--threads N] [--channels N]\n"
        "                 [--capacity-mb N] [--scale F] [--repeats N]\n"
        "                 [--devices N] [--shards N] [--requests N]\n"
        "                 [--zipf F] [--store FILE] [--store-mmap]\n"
        "                 [--regions N] [--shed RPS] [--sched NAME]\n"
        "                 [--preset NAME]\n"
        "                 [--trace FILE] [--trace-speed F]\n"
        "                 [--record-trace FILE]\n"
        "                 [--ambient F] [--epoch-us F] [--cores N]\n"
        "                 [--out FILE] [--csv FILE] [--timings]\n"
        "                 [--quiet]\n"
        "       codic_run --trace-info FILE\n"
        "       codic_run --help\n");
}

/** Group key of a scenario name: the part before the first '_'. */
std::string
listGroupOf(const std::string &name)
{
    return name.substr(0, name.find('_'));
}

void
printList()
{
    const auto scenarios = ScenarioRegistry::instance().scenarios();
    std::printf("%zu registered scenarios:\n", scenarios.size());
    size_t width = 0;
    for (const Scenario *s : scenarios)
        width = std::max(width, s->name().size());
    // scenarios() is name-sorted, so each prefix group is contiguous:
    // emit a blank line + header whenever the prefix changes.
    std::string group;
    for (const Scenario *s : scenarios) {
        const std::string g = listGroupOf(s->name());
        if (g != group) {
            group = g;
            std::printf("\n%s:\n", group.c_str());
        }
        std::printf("  %-*s  %s\n", static_cast<int>(width),
                    s->name().c_str(), s->describe().c_str());
    }
}

/**
 * The markdown scenario catalog (docs/SCENARIOS.md). CI regenerates
 * it and fails on any diff, so the document can never drift from the
 * registry. Output depends only on the registered scenarios.
 */
void
printListMarkdown()
{
    const auto scenarios = ScenarioRegistry::instance().scenarios();
    std::printf("# Scenario catalog\n"
                "\n"
                "<!-- Generated by `codic_run --list-md`. Do not "
                "edit by hand: CI\n"
                "     regenerates this file and fails on any "
                "diff. -->\n"
                "\n"
                "%zu registered scenarios. Run one with "
                "`codic_run --scenario NAME`\n"
                "(repeatable), or everything with `codic_run --all`. "
                "See\n"
                "[CLI.md](CLI.md) for the full flag reference and\n"
                "[SCHEDULING.md](SCHEDULING.md) for the `--sched` "
                "policy presets.\n",
                scenarios.size());
    std::string group;
    for (const Scenario *s : scenarios) {
        const std::string g = listGroupOf(s->name());
        if (g != group) {
            group = g;
            std::printf("\n## %s\n\n", group.c_str());
            std::printf("| scenario | description |\n"
                        "| --- | --- |\n");
        }
        std::printf("| `%s` | %s |\n", s->name().c_str(),
                    s->describe().c_str());
    }
}

int
fail(const std::string &message)
{
    std::fprintf(stderr, "codic_run: %s\n", message.c_str());
    return 2;
}

/** Whole-string integer parse; malformed or overflowing input is a
 *  loud error. */
int64_t
parseInt(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    const int64_t v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(
            stderr,
            "codic_run: %s needs an integer (in range), got '%s'\n",
            flag, text);
        std::exit(2);
    }
    return v;
}

/** parseInt for int-typed flags: rejects values the int cast would
 *  silently wrap. */
int
parseIntArg(const char *flag, const char *text)
{
    const int64_t v = parseInt(flag, text);
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
        std::fprintf(stderr,
                     "codic_run: %s value '%s' is out of range\n",
                     flag, text);
        std::exit(2);
    }
    return static_cast<int>(v);
}

/** Whole-string unsigned parse (seeds span the full uint64 range);
 *  malformed, negative, or overflowing input is a loud error. */
uint64_t
parseUint(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    // strtoull silently negates "-1" into a huge value; reject
    // signs up front.
    const bool signed_input = text[0] == '-' || text[0] == '+';
    const uint64_t v = std::strtoull(text, &end, 10);
    if (signed_input || end == text || *end != '\0' ||
        errno == ERANGE) {
        std::fprintf(stderr,
                     "codic_run: %s needs an unsigned integer (in "
                     "range), got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

/** Whole-string finite floating-point parse; malformed, infinite,
 *  or overflowing input is a loud error. */
double
parseDouble(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v)) {
        std::fprintf(
            stderr,
            "codic_run: %s needs a finite number, got '%s'\n", flag,
            text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions options;
    std::vector<std::string> selected;
    bool all = false;
    bool list = false;
    bool quiet = false;
    std::string out_path;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "codic_run: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--list-md") {
            printListMarkdown();
            return 0;
        } else if (arg == "--scenario") {
            selected.push_back(next("--scenario"));
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--seed") {
            options.seed = parseUint("--seed", next("--seed"));
        } else if (arg == "--threads") {
            options.threads = parseIntArg("--threads", next("--threads"));
            if (options.threads < 0)
                return fail("--threads must be >= 0 (0 = auto)");
        } else if (arg == "--channels") {
            options.channels = parseIntArg("--channels", next("--channels"));
            if (options.channels < 0)
                return fail("--channels must be >= 0 (0 = scenario "
                            "default)");
        } else if (arg == "--capacity-mb") {
            options.capacity_mb =
                parseInt("--capacity-mb", next("--capacity-mb"));
            if (options.capacity_mb < 0)
                return fail("--capacity-mb must be >= 0 (0 = "
                            "scenario default)");
        } else if (arg == "--scale") {
            options.scale = parseDouble("--scale", next("--scale"));
            if (options.scale <= 0.0 || options.scale > 1.0)
                return fail("--scale must be in (0, 1]");
        } else if (arg == "--repeats") {
            options.repeats = parseIntArg("--repeats", next("--repeats"));
            if (options.repeats < 1)
                return fail("--repeats must be >= 1");
        } else if (arg == "--devices") {
            options.devices = parseInt("--devices", next("--devices"));
            if (options.devices < 1)
                return fail("--devices must be >= 1");
        } else if (arg == "--shards") {
            options.shards = parseIntArg("--shards", next("--shards"));
            if (options.shards < 1)
                return fail("--shards must be >= 1");
        } else if (arg == "--requests") {
            options.requests = parseInt("--requests", next("--requests"));
            if (options.requests < 1)
                return fail("--requests must be >= 1");
        } else if (arg == "--zipf") {
            options.zipf = parseDouble("--zipf", next("--zipf"));
            if (!(options.zipf >= 0.0)) // Rejects NaN too.
                return fail("--zipf must be >= 0 (0 = uniform)");
        } else if (arg == "--store") {
            options.store_path = next("--store");
        } else if (arg == "--store-mmap") {
            options.store_mmap = true;
        } else if (arg == "--regions") {
            options.regions = parseIntArg("--regions", next("--regions"));
            if (options.regions < 1)
                return fail("--regions must be >= 1");
        } else if (arg == "--shed") {
            options.shed = parseDouble("--shed", next("--shed"));
            if (!(options.shed >= 0.0)) // Rejects NaN too.
                return fail("--shed must be >= 0 requests/s "
                            "(0 = admission off)");
        } else if (arg == "--preset") {
            options.dram_preset = next("--preset");
            if (options.dram_preset == "help" ||
                options.dram_preset == "list") {
                for (const auto &n : DramConfig::presetNames())
                    std::printf("%s\n", n.c_str());
                return 0;
            }
            // Resolve a throwaway module now so an unknown grade
            // fails before any scenario runs.
            try {
                DramConfig::preset(options.dram_preset, 64);
            } catch (const std::exception &e) {
                return fail(e.what());
            }
        } else if (arg == "--sched") {
            options.sched = next("--sched");
            // "--sched help" / "--sched list" print the preset and
            // knob reference instead of failing on an unknown name.
            if (options.sched == "help" || options.sched == "list") {
                std::printf("%s",
                            SchedulerPolicy::describeKnobs().c_str());
                return 0;
            }
            // Resolve now so an unknown preset or knob fails before
            // any scenario runs (and before any sink opens).
            try {
                SchedulerPolicy::parse(options.sched);
            } catch (const std::exception &e) {
                return fail(e.what());
            }
        } else if (arg == "--trace") {
            options.trace_path = next("--trace");
        } else if (arg == "--trace-speed") {
            options.trace_speed =
                parseDouble("--trace-speed", next("--trace-speed"));
            if (!(options.trace_speed > 0.0))
                return fail("--trace-speed must be > 0");
        } else if (arg == "--ambient") {
            options.ambient_c =
                parseDouble("--ambient", next("--ambient"));
            if (!(options.ambient_c >= -40.0) ||
                !(options.ambient_c <= 120.0))
                return fail("--ambient must be within the modeled "
                            "-40..120 C range");
        } else if (arg == "--epoch-us") {
            options.epoch_us =
                parseDouble("--epoch-us", next("--epoch-us"));
            if (!(options.epoch_us > 0.0))
                return fail("--epoch-us must be > 0");
        } else if (arg == "--cores") {
            options.cores = parseIntArg("--cores", next("--cores"));
            if (options.cores < 1)
                return fail("--cores must be >= 1");
        } else if (arg == "--record-trace") {
            options.record_trace = next("--record-trace");
        } else if (arg == "--trace-info") {
            const char *path = next("--trace-info");
            try {
                std::printf("%s", TraceReader(path).describe().c_str());
            } catch (const std::exception &e) {
                return fail(e.what());
            }
            return 0;
        } else if (arg == "--out") {
            out_path = next("--out");
        } else if (arg == "--csv") {
            csv_path = next("--csv");
        } else if (arg == "--timings") {
            options.emit_timings = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            printUsage();
            return fail("unknown argument '" + arg + "'");
        }
    }

    if (list) {
        printList();
        return 0;
    }

    auto &registry = ScenarioRegistry::instance();
    if (all)
        selected = registry.names();
    // A bare `codic_run --trace FILE` means "replay this".
    if (selected.empty() && !options.trace_path.empty())
        selected.push_back("trace_replay");
    if (selected.empty()) {
        printUsage();
        return fail("nothing to run (use --scenario, --all, or "
                    "--list)");
    }
    for (const auto &name : selected) {
        if (registry.find(name))
            continue;
        std::string message = "unknown scenario '" + name +
                              "'; registered scenarios:";
        for (const auto &known : registry.names())
            message += "\n  " + known;
        return fail(message);
    }

    // Assemble the sink stack: text for humans, JSON/CSV for
    // machines. When a machine sink writes to stdout, the text
    // report would interleave with it and corrupt the document, so
    // suppress it.
    if (out_path == "-" || csv_path == "-")
        quiet = true;
    MultiResultSink sink;
    std::unique_ptr<TextResultSink> text;
    if (!quiet) {
        text = std::make_unique<TextResultSink>(std::cout);
        sink.addSink(text.get());
    }
    std::ofstream out_file;
    std::unique_ptr<JsonResultSink> json;
    if (!out_path.empty()) {
        std::ostream *os = &std::cout;
        if (out_path != "-") {
            out_file.open(out_path);
            if (!out_file)
                return fail("cannot open '" + out_path +
                            "' for writing");
            os = &out_file;
        }
        json = std::make_unique<JsonResultSink>(*os);
        sink.addSink(json.get());
    }
    std::ofstream csv_file;
    std::unique_ptr<CsvResultSink> csv;
    if (!csv_path.empty()) {
        std::ostream *os = &std::cout;
        if (csv_path != "-") {
            csv_file.open(csv_path);
            if (!csv_file)
                return fail("cannot open '" + csv_path +
                            "' for writing");
            os = &csv_file;
        }
        csv = std::make_unique<CsvResultSink>(*os);
        sink.addSink(csv.get());
    }

    // Validate the option bundle (notably the trace-flag contract:
    // --trace must exist, must differ from --record-trace, and
    // --trace-speed must be positive) before the recorder creates
    // its output file or any sink opens.
    try {
        options.validate();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    if (!options.record_trace.empty()) {
        TraceMeta meta;
        for (const auto &name : selected)
            meta.scenario +=
                (meta.scenario.empty() ? "" : ",") + name;
        meta.seed = options.seed;
        try {
            TraceRecorder::start(options.record_trace, meta);
        } catch (const std::exception &e) {
            return fail(e.what());
        }
    }

    // A scenario failure must not abort the whole run: record it,
    // keep going, and report a per-scenario summary at the end.
    struct Failure
    {
        std::string scenario;
        std::string message;
    };
    std::vector<Failure> failures;
    for (int repeat = 0; repeat < options.repeats; ++repeat) {
        RunOptions repeat_options = options;
        repeat_options.seed =
            options.seed + static_cast<uint64_t>(repeat);
        for (const auto &name : selected) {
            try {
                runScenario(name, repeat_options, sink);
            } catch (const std::exception &e) {
                failures.push_back({name, e.what()});
                std::fprintf(stderr,
                             "codic_run: scenario '%s' failed: %s\n",
                             name.c_str(), e.what());
            }
        }
    }

    if (!options.record_trace.empty()) {
        try {
            const uint64_t recorded = TraceRecorder::stop();
            std::fprintf(stderr,
                         "codic_run: recorded %llu transactions to "
                         "%s\n",
                         static_cast<unsigned long long>(recorded),
                         options.record_trace.c_str());
        } catch (const std::exception &e) {
            return fail(e.what());
        }
    }

    if (json)
        json->finish();
    if (!failures.empty()) {
        std::fprintf(stderr,
                     "codic_run: %zu of %zu scenario run(s) failed:\n",
                     failures.size(),
                     selected.size() *
                         static_cast<size_t>(options.repeats));
        for (const auto &f : failures)
            std::fprintf(stderr, "  %s: %s\n", f.scenario.c_str(),
                         f.message.c_str());
        return 1;
    }
    return 0;
}
