/**
 * @file
 * codic_run - the single driver over the scenario registry and the
 * canonical way to reproduce the paper's figures and tables.
 *
 * Usage:
 *   codic_run --list
 *   codic_run --scenario puf_fig5_jaccard [--scenario ...]
 *   codic_run --all --scale 0.01 --out results.json --csv results.csv
 *
 * Options:
 *   --list             List registered scenarios and exit.
 *   --scenario NAME    Run one scenario (repeatable).
 *   --all              Run every registered scenario.
 *   --seed N           Campaign seed (default 1: the paper seeds).
 *   --threads N        CampaignEngine threads (0 = auto-detect).
 *   --channels N       DramConfig override: channels.
 *   --capacity-mb N    DramConfig override: module capacity.
 *   --scale F          Work-scale factor in (0,1] (default 1).
 *   --repeats N        Repeat each scenario N times (seed, seed+1...).
 *   --out FILE         Write machine-readable JSON ("-" = stdout).
 *   --csv FILE         Write long-format CSV ("-" = stdout).
 *   --timings          Include wall-clock values in JSON/CSV
 *                      (breaks byte-determinism of the output).
 *   --quiet            Suppress the human-readable text report.
 *
 * Without --timings the JSON/CSV output is byte-identical for a
 * fixed --seed/--scale at any --threads value. One documented
 * exception: for ablation_engine_parallelism the thread count is an
 * input parameter of the study itself, so an explicit --threads
 * above 8 extends its sweep (and with it the row set).
 *
 * When --out or --csv is "-", the text report is suppressed
 * automatically so stdout stays parseable.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/result_sink.h"
#include "scenario/registry.h"

namespace {

using namespace codic;

void
printUsage()
{
    std::fprintf(
        stderr,
        "usage: codic_run --list\n"
        "       codic_run (--scenario NAME)... | --all\n"
        "                 [--seed N] [--threads N] [--channels N]\n"
        "                 [--capacity-mb N] [--scale F] [--repeats N]\n"
        "                 [--out FILE] [--csv FILE] [--timings]\n"
        "                 [--quiet]\n");
}

void
printList()
{
    const auto scenarios = ScenarioRegistry::instance().scenarios();
    std::printf("%zu registered scenarios:\n\n", scenarios.size());
    size_t width = 0;
    for (const Scenario *s : scenarios)
        width = std::max(width, s->name().size());
    for (const Scenario *s : scenarios)
        std::printf("  %-*s  %s\n", static_cast<int>(width),
                    s->name().c_str(), s->describe().c_str());
}

int
fail(const std::string &message)
{
    std::fprintf(stderr, "codic_run: %s\n", message.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions options;
    std::vector<std::string> selected;
    bool all = false;
    bool list = false;
    bool quiet = false;
    std::string out_path;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "codic_run: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--scenario") {
            selected.push_back(next("--scenario"));
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--seed") {
            options.seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (arg == "--threads") {
            options.threads =
                static_cast<int>(std::strtol(next("--threads"),
                                             nullptr, 10));
        } else if (arg == "--channels") {
            options.channels =
                static_cast<int>(std::strtol(next("--channels"),
                                             nullptr, 10));
        } else if (arg == "--capacity-mb") {
            options.capacity_mb =
                std::strtoll(next("--capacity-mb"), nullptr, 10);
        } else if (arg == "--scale") {
            options.scale = std::strtod(next("--scale"), nullptr);
            if (options.scale <= 0.0 || options.scale > 1.0)
                return fail("--scale must be in (0, 1]");
        } else if (arg == "--repeats") {
            options.repeats =
                static_cast<int>(std::strtol(next("--repeats"),
                                             nullptr, 10));
            if (options.repeats < 1)
                return fail("--repeats must be >= 1");
        } else if (arg == "--out") {
            out_path = next("--out");
        } else if (arg == "--csv") {
            csv_path = next("--csv");
        } else if (arg == "--timings") {
            options.emit_timings = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            printUsage();
            return fail("unknown argument '" + arg + "'");
        }
    }

    if (list) {
        printList();
        return 0;
    }

    auto &registry = ScenarioRegistry::instance();
    if (all)
        selected = registry.names();
    if (selected.empty()) {
        printUsage();
        return fail("nothing to run (use --scenario, --all, or "
                    "--list)");
    }
    for (const auto &name : selected) {
        if (registry.find(name))
            continue;
        std::string message = "unknown scenario '" + name +
                              "'; registered scenarios:";
        for (const auto &known : registry.names())
            message += "\n  " + known;
        return fail(message);
    }

    // Assemble the sink stack: text for humans, JSON/CSV for
    // machines. When a machine sink writes to stdout, the text
    // report would interleave with it and corrupt the document, so
    // suppress it.
    if (out_path == "-" || csv_path == "-")
        quiet = true;
    MultiResultSink sink;
    std::unique_ptr<TextResultSink> text;
    if (!quiet) {
        text = std::make_unique<TextResultSink>(std::cout);
        sink.addSink(text.get());
    }
    std::ofstream out_file;
    std::unique_ptr<JsonResultSink> json;
    if (!out_path.empty()) {
        std::ostream *os = &std::cout;
        if (out_path != "-") {
            out_file.open(out_path);
            if (!out_file)
                return fail("cannot open '" + out_path +
                            "' for writing");
            os = &out_file;
        }
        json = std::make_unique<JsonResultSink>(*os);
        sink.addSink(json.get());
    }
    std::ofstream csv_file;
    std::unique_ptr<CsvResultSink> csv;
    if (!csv_path.empty()) {
        std::ostream *os = &std::cout;
        if (csv_path != "-") {
            csv_file.open(csv_path);
            if (!csv_file)
                return fail("cannot open '" + csv_path +
                            "' for writing");
            os = &csv_file;
        }
        csv = std::make_unique<CsvResultSink>(*os);
        sink.addSink(csv.get());
    }

    for (int repeat = 0; repeat < options.repeats; ++repeat) {
        RunOptions repeat_options = options;
        repeat_options.seed =
            options.seed + static_cast<uint64_t>(repeat);
        for (const auto &name : selected)
            runScenario(name, repeat_options, sink);
    }

    if (json)
        json->finish();
    return 0;
}
