/**
 * @file
 * Wall-clock microbenchmark of the simulator hot path, feeding the
 * bench_report.py throughput gate.
 *
 * Two loops, both pure MemoryService API so the numbers track the
 * controller/channel implementation and nothing else:
 *
 *  - closed_loop: a submit -> poll -> complete closed loop over one
 *    FR-FCFS controller (batched preset): a bounded in-flight read
 *    ring, fire-and-forget writebacks retired on submission, row ops
 *    sprinkled in, periodic poll() sweeps - the transaction pattern
 *    of the secure-deallocation and TCG evaluations.
 *
 *  - replay: the fleet ReplayCursor interleave - slices of cursors
 *    over distinct banks, each keeping one transaction in flight
 *    stamped with its local clock, harvested in ascending local-clock
 *    order, exactly the AuthService::execute slice loop.
 *
 * Output is JSON (schema codic-hotpath-v1): per loop the transaction
 * count, the median wall seconds over --repeats runs, and the derived
 * transactions/sec. Wall-clock is machine-dependent; CI gates it with
 * a generous tolerance against a pinned same-runner baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dram/system.h"
#include "mem/transaction.h"

namespace {

using codic::Cycle;
using codic::DramConfig;
using codic::DramSystem;
using codic::MemTransaction;
using codic::Rng;
using codic::RowOpMechanism;
using codic::SchedulerPolicy;
using codic::Ticket;
using codic::kInvalidTicket;

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Closed submit -> poll -> complete loop: returns transactions
 * executed. A 32-deep read ring keeps completions chasing submissions
 * (the pattern every blocking shim caller produces), writes are
 * fire-and-forget retired, and every 64th transaction polls.
 */
uint64_t
runClosedLoop(uint64_t txns)
{
    DramConfig cfg = DramConfig::ddr3_1600(1024, 1);
    cfg.scheduler = SchedulerPolicy::preset("batched");
    DramSystem sys(cfg);

    const uint64_t rows =
        static_cast<uint64_t>(cfg.totalRows());
    const uint64_t row_bytes =
        static_cast<uint64_t>(cfg.row_bytes);
    Rng rng(0x4015ECull);

    std::vector<Ticket> ring;
    const size_t ring_depth = 32;
    ring.reserve(ring_depth);
    size_t ring_head = 0;

    Cycle now = 0;
    uint64_t executed = 0;
    for (uint64_t i = 0; i < txns; ++i) {
        const uint64_t addr =
            (rng.next64() % rows) * row_bytes +
            (rng.next64() % 8) * 64;
        const uint32_t kind_pick = static_cast<uint32_t>(i % 10);
        if (kind_pick < 5) {
            // Read with bounded in-flight window.
            if (ring.size() < ring_depth) {
                ring.push_back(sys.submit(
                    MemTransaction::makeRead(addr, now)));
            } else {
                sys.completionOf(ring[ring_head]);
                ring[ring_head] =
                    sys.submit(MemTransaction::makeRead(addr, now));
                ring_head = (ring_head + 1) % ring_depth;
            }
        } else if (kind_pick < 9) {
            // Fire-and-forget writeback: bookkeeping must stay
            // bounded (see test_mem ticket-retire coverage).
            sys.retire(sys.submit(
                MemTransaction::makeWrite(addr, now)));
        } else {
            sys.retire(sys.submit(MemTransaction::makeRowOp(
                addr - addr % row_bytes, now,
                RowOpMechanism::CodicDet)));
        }
        ++executed;
        now += 4;
        if (i % 64 == 63)
            sys.poll(now);
    }
    for (const Ticket t : ring)
        sys.completionOf(t);
    sys.drainAll();
    return executed;
}

/**
 * The fleet ReplayCursor interleave: `slices` slices of `width`
 * cursors (distinct banks), each cursor an eval footprint of `passes`
 * passes of one CODIC row op plus a full-row burst read sweep. One
 * transaction in flight per cursor, harvested in ascending
 * local-clock order - the AuthService::execute slice loop verbatim.
 * Returns transactions executed.
 */
uint64_t
runReplayLoop(uint64_t slices, int width, int passes)
{
    DramConfig cfg = DramConfig::ddr3_1600(1024, 1);
    cfg.scheduler = SchedulerPolicy::preset("batched");
    DramSystem sys(cfg);

    const int bursts = static_cast<int>(
        std::min<int64_t>(cfg.row_bytes / cfg.burst_bytes,
                          cfg.columns));
    const uint64_t rows = static_cast<uint64_t>(cfg.totalRows());
    const uint64_t row_bytes = static_cast<uint64_t>(cfg.row_bytes);

    struct Cursor
    {
        uint64_t base = 0;
        int passes_left = 0;
        int reads_left = 0;
        int read_idx = 0;
        Cycle now = 0;
        Ticket in_flight = kInvalidTicket;

        bool done() const
        {
            return passes_left == 0 && reads_left == 0;
        }

        void submitNext(DramSystem &sys, int bursts)
        {
            if (reads_left == 0) {
                in_flight = sys.submit(MemTransaction::makeRowOp(
                    base, now, RowOpMechanism::CodicDet));
                --passes_left;
                reads_left = bursts;
                read_idx = 0;
                return;
            }
            in_flight = sys.submit(MemTransaction::makeRead(
                base + static_cast<uint64_t>(read_idx) * 64, now));
            ++read_idx;
            --reads_left;
        }
    };

    std::vector<Cursor> cursors(static_cast<size_t>(width));
    uint64_t executed = 0;
    Cycle slice_start = 0;
    for (uint64_t s = 0; s < slices; ++s) {
        for (int k = 0; k < width; ++k) {
            Cursor &c = cursors[static_cast<size_t>(k)];
            c = Cursor{};
            // Distinct banks per slice: consecutive global rows walk
            // banks under the default RoBaCo map.
            c.base = ((s * static_cast<uint64_t>(width) +
                       static_cast<uint64_t>(k)) %
                      rows) *
                     row_bytes;
            c.passes_left = passes;
            c.now = slice_start;
        }
        for (auto &c : cursors) {
            if (!c.done()) {
                c.submitNext(sys, bursts);
                ++executed;
            }
        }
        while (true) {
            Cursor *next = nullptr;
            for (auto &c : cursors)
                if (c.in_flight != kInvalidTicket &&
                    (!next || c.now < next->now))
                    next = &c;
            if (!next)
                break;
            next->now = sys.completionOf(next->in_flight);
            next->in_flight = kInvalidTicket;
            if (!next->done()) {
                next->submitNext(sys, bursts);
                ++executed;
            }
        }
        for (const auto &c : cursors)
            slice_start = std::max(slice_start, c.now);
    }
    return executed;
}

struct LoopResult
{
    uint64_t transactions = 0;
    double median_wall_s = 0.0;
    std::vector<double> wall_s;

    double txnPerSec() const
    {
        return median_wall_s > 0.0
                   ? static_cast<double>(transactions) / median_wall_s
                   : 0.0;
    }
};

template <typename Fn>
LoopResult
timeLoop(int repeats, Fn &&fn)
{
    LoopResult r;
    for (int i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        r.transactions = fn();
        r.wall_s.push_back(wallSeconds(start));
    }
    std::vector<double> sorted = r.wall_s;
    std::sort(sorted.begin(), sorted.end());
    r.median_wall_s = sorted[sorted.size() / 2];
    return r;
}

void
emitLoop(std::ostream &os, const char *name, const LoopResult &r,
         bool last)
{
    char buf[64];
    os << "    \"" << name << "\": {\n"
       << "      \"transactions\": " << r.transactions << ",\n";
    std::snprintf(buf, sizeof buf, "%.6f", r.median_wall_s);
    os << "      \"median_wall_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.1f", r.txnPerSec());
    os << "      \"txn_per_sec\": " << buf << ",\n"
       << "      \"wall_s\": [";
    for (size_t i = 0; i < r.wall_s.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%.6f", r.wall_s[i]);
        os << (i ? ", " : "") << buf;
    }
    os << "]\n    }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t txns = 400000;
    uint64_t slices = 200;
    int width = 8;
    int passes = 2;
    int repeats = 3;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bench_hotpath: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--txns")
            txns = std::strtoull(need("--txns"), nullptr, 10);
        else if (arg == "--slices")
            slices = std::strtoull(need("--slices"), nullptr, 10);
        else if (arg == "--width")
            width = std::atoi(need("--width"));
        else if (arg == "--passes")
            passes = std::atoi(need("--passes"));
        else if (arg == "--repeats")
            repeats = std::atoi(need("--repeats"));
        else if (arg == "--out")
            out_path = need("--out");
        else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: bench_hotpath [--txns N] [--slices N]\n"
                << "    [--width K] [--passes P] [--repeats R]\n"
                << "    [--out FILE]\n"
                << "Times the submit->poll->complete closed loop and\n"
                << "the fleet ReplayCursor interleave; reports\n"
                << "median-of-R transactions/sec as JSON.\n";
            return 0;
        } else {
            std::cerr << "bench_hotpath: unknown flag " << arg
                      << "\n";
            return 2;
        }
    }
    if (repeats < 1 || width < 1 || passes < 1) {
        std::cerr << "bench_hotpath: repeats/width/passes must be "
                  << ">= 1\n";
        return 2;
    }

    const LoopResult closed =
        timeLoop(repeats, [&] { return runClosedLoop(txns); });
    const LoopResult replay = timeLoop(
        repeats, [&] { return runReplayLoop(slices, width, passes); });

    std::ostringstream doc;
    doc << "{\n  \"schema\": \"codic-hotpath-v1\",\n  \"loops\": {\n";
    emitLoop(doc, "closed_loop", closed, false);
    emitLoop(doc, "replay", replay, true);
    doc << "  }\n}\n";

    if (!out_path.empty()) {
        std::ofstream f(out_path);
        f << doc.str();
    }
    std::cout << doc.str();
    std::cerr << "bench_hotpath: closed_loop "
              << static_cast<uint64_t>(closed.txnPerSec())
              << " txn/s, replay "
              << static_cast<uint64_t>(replay.txnPerSec())
              << " txn/s (median of " << repeats << ")\n";
    return 0;
}
